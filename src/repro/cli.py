"""Command-line interface: run paper experiments without writing code.

Examples::

    python -m repro list
    python -m repro run tmm --variant lp --threads 4 -p n=48 -p bsize=8
    python -m repro compare tmm --variants base,lp,ep --threads 4
    python -m repro crash tmm --at-op 20000 --threads 2 -p n=24
    python -m repro sweep checksum tmm --threads 4

Machine presets: ``scaled`` (default; Table II shrunk to Python-scale
problems), ``paper`` (Table II verbatim) and ``real`` (Table III DRAM
system).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.crashlab import run_crash_campaign, run_crashcheck_campaign
from repro.analysis.experiments import compare_variants, run_variant
from repro.analysis.reporting import format_table
from repro.analysis.runner import ResultCache
from repro.analysis import sweep as sweeps
from repro.core.checksum import available_engines
from repro.schemes import get_scheme, scheme_names
from repro.sim.config import (
    MachineConfig,
    paper_machine,
    real_system_machine,
    scaled_machine,
    tiny_machine,
)
from repro.sim.model import (
    DEFAULT_MODEL,
    enumerable_model_names,
    get_model,
    model_names,
)
from repro.sim.timing import TIMING_MODELS
from repro.workloads import available_workloads, get_workload

_PRESETS = {
    "scaled": scaled_machine,
    "paper": paper_machine,
    "real": real_system_machine,
    "tiny": tiny_machine,
}

#: Problem sizes small enough for exhaustive crash-state enumeration.
#: ``repro crashcheck`` applies these per-workload defaults when the
#: user gives no ``-p`` overrides; performance commands never use them.
_CRASHCHECK_PARAMS: Dict[str, Dict[str, object]] = {
    "tmm": {"n": 8, "bsize": 4, "kk_tiles": 1},
    "fft": {"n": 16},
    "gauss": {"n": 8, "row_block": 4},
    "cholesky": {"n": 8, "col_block": 4},
    "conv2d": {"n": 8, "row_block": 2},
    "log": {"records": 6, "width": 2, "wb_batch": 2},
    "hashmap": {"capacity": 8, "ops": 6, "keys": 3, "wb_batch": 2},
}


#: Tiny problem sizes the smoke mode applies (same crashcheck-friendly
#: sizes as above; CI's smoke jobs stay fast without per-job -p lists).
_SMOKE_PARAMS = _CRASHCHECK_PARAMS


def _smoke() -> bool:
    """Whether ``REPRO_SMOKE=1`` (the benchmarks' smoke convention)."""
    return os.environ.get("REPRO_SMOKE") == "1"


def _smoke_adjust(args) -> None:
    """Resolve the machine preset, honouring ``REPRO_SMOKE``.

    Observability commands (trace/heatmap/flame) leave their
    ``--machine`` default unset so smoke runs drop to the tiny preset
    and tiny problem sizes; an explicit ``--machine`` or ``-p`` always
    wins (user params come last, and ``_parse_params`` is last-wins).
    """
    if not _smoke():
        if args.machine is None:
            args.machine = "scaled"
        return
    if args.machine is None:
        args.machine = "tiny"
    smoke = [
        f"{key}={value}"
        for key, value in _SMOKE_PARAMS.get(args.workload, {}).items()
    ]
    args.param = smoke + (args.param or [])


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, object]:
    """-p key=value pairs; ints stay ints, known literals convert."""
    params: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad -p argument {pair!r}; expected key=value")
        key, raw = pair.split("=", 1)
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                value = raw
        params[key] = value
    return params


def _machine(args) -> MachineConfig:
    cfg = _PRESETS[args.machine](num_cores=max(args.threads + 1, 2))
    timing = getattr(args, "timing", None)
    if timing is not None and timing != cfg.timing:
        cfg = cfg.with_timing(timing)
    model = getattr(args, "model", DEFAULT_MODEL)
    if model != DEFAULT_MODEL:
        cfg = cfg.with_model(model)
    return cfg


def _workload(args):
    return get_workload(args.workload)(**_parse_params(args.param))


def _cache(args) -> Optional[ResultCache]:
    """The on-disk result cache the engine flags selected (or None)."""
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(root=getattr(args, "cache_dir", None))


def _cmd_list(args) -> int:
    rows = []
    for name in available_workloads():
        cls = get_workload(name)
        rows.append([name, ", ".join(cls.variants)])
    print(format_table(["workload", "variants"], rows, title="Workloads"))
    print()
    # Workload x scheme support grid.  "crashcheck" marks cells that
    # `repro crashcheck` covers: sound schemes must pass on every
    # reachable image; deliberately broken ones must be flagged with a
    # counterexample.
    grid = []
    for name in available_workloads():
        cls = get_workload(name)
        for scheme_name in scheme_names():
            scheme = get_scheme(scheme_name)
            if scheme_name in cls.variants:
                supported = "yes"
            elif scheme_name in cls.broken_variants:
                supported = "broken (fault model)"
            else:
                continue
            checkable = scheme.sound or scheme_name in cls.broken_variants
            grid.append(
                [
                    name,
                    scheme_name,
                    supported,
                    "crashcheck" if checkable else "-",
                ]
            )
    print(
        format_table(
            ["workload", "scheme", "support", "crash testing"],
            grid,
            title="Persistency schemes per workload",
        )
    )
    print()
    model_rows = []
    for model_name in model_names():
        model = get_model(model_name)
        model_rows.append(
            [
                model_name + (" (default)" if model_name == DEFAULT_MODEL else ""),
                "yes" if model.enumerable else "-",
                model.summary,
            ]
        )
    print(
        format_table(
            ["model", "crashcheck", "summary"],
            model_rows,
            title="Persistency models",
        )
    )
    print()
    print(
        format_table(
            ["engine"], [[e] for e in available_engines()],
            title="Checksum engines",
        )
    )
    print()
    print(
        format_table(
            ["preset"], [[p] for p in sorted(_PRESETS)],
            title="Machine presets",
        )
    )
    return 0


def _cmd_run(args) -> int:
    config = _machine(args)
    started = time.perf_counter()
    result = run_variant(
        _workload(args),
        config,
        args.variant,
        num_threads=args.threads,
        engine=args.engine,
        cleaner_period=args.cleaner_period,
        drain=args.drain,
        obs_interval=args.obs_interval,
        tier=args.tier,
    )
    wall_clock_s = time.perf_counter() - started
    rows = [[k, v] for k, v in sorted(result.summary_dict().items())]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"{args.workload}+{args.variant} ({args.threads} threads)",
        )
    )
    if result.obs_path is not None:
        print(f"\n[observability: {result.obs_path} path]")
    if result.obs_fallback_reason is not None:
        print(f"[stream tier fell back: {result.obs_fallback_reason}]")
    if args.obs_out:
        if result.intervals is None:
            raise SystemExit("--obs-out requires --obs-interval")
        _write_intervals(result.intervals, args.obs_out)
        print(f"\n[interval series saved to {args.obs_out}]")
    if args.report_out:
        from repro.obs import RunReport

        report = RunReport.from_result(
            result,
            config,
            engine=args.engine,
            wall_clock_s=wall_clock_s,
            workload_params=_parse_params(args.param),
        )
        report.save(args.report_out)
        print(f"[run report saved to {args.report_out}]")
    return 0


def _write_intervals(intervals: Dict[str, object], out: str) -> None:
    """Dump an interval series as JSON, or CSV for ``.csv`` paths."""
    import json

    if out.endswith(".csv"):
        from repro.obs import IntervalSampler

        text = IntervalSampler(
            float(intervals["interval"])  # type: ignore[arg-type]
        ).csv(intervals)
        with open(out, "w") as fh:
            fh.write(text)
    else:
        with open(out, "w") as fh:
            json.dump(intervals, fh, indent=2, sort_keys=True)
            fh.write("\n")


def _cmd_trace(args) -> int:
    from repro.obs import RunReport, TraceRecorder, write_chrome_trace
    from repro.obs.report import config_hash

    _smoke_adjust(args)
    config = _machine(args)
    recorder = TraceRecorder()
    result = run_variant(
        _workload(args),
        config,
        args.variant,
        num_threads=args.threads,
        engine=args.engine,
        cleaner_period=args.cleaner_period,
        observers=[recorder],
    )
    out = args.out or f"{args.workload}-{args.variant}.trace.json"
    count = write_chrome_trace(
        recorder,
        out,
        label=f"{args.workload}/{args.variant}",
        metadata={
            "workload": args.workload,
            "variant": args.variant,
            "threads": args.threads,
            "timing": config.timing,
            "config_hash": config_hash(config),
        },
    )
    print(
        f"{args.workload}/{args.variant}: {len(recorder)} probe events "
        f"-> {count} trace events -> {out}"
    )
    print("open in ui.perfetto.dev or chrome://tracing")
    if args.report_out:
        report = RunReport.from_result(
            result,
            config,
            engine=args.engine,
            workload_params=_parse_params(args.param),
        )
        report.save(args.report_out)
        print(f"[run report saved to {args.report_out}]")
    return 0


def _cmd_heatmap(args) -> int:
    """Per-line / per-region NVMM write heatmap (repro.obs.profile)."""
    from repro.obs import WriteHeatmap, render_heatmap

    _smoke_adjust(args)
    config = _machine(args)
    run_kwargs = dict(
        num_threads=args.threads,
        engine=args.engine,
        cleaner_period=args.cleaner_period,
    )
    heatmap = WriteHeatmap()
    run_variant(
        _workload(args), config, args.variant,
        observers=[heatmap], **run_kwargs,
    )
    base = None
    if args.base_variant and args.base_variant != "none":
        base = WriteHeatmap()
        run_variant(
            _workload(args), config, args.base_variant,
            observers=[base], **run_kwargs,
        )
    print(
        render_heatmap(
            heatmap, base=base, top=args.top,
            title=f"{args.workload}/{args.variant}: write heatmap",
        )
    )
    if args.out:
        if args.out.endswith(".csv"):
            with open(args.out, "w") as fh:
                fh.write(heatmap.csv())
        else:
            import json

            with open(args.out, "w") as fh:
                json.dump(heatmap.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(f"\n[heatmap saved to {args.out}]")
    return 0


def _cmd_flame(args) -> int:
    """Stall flamegraph: provenance x cause in collapsed-stack format."""
    from repro.obs import StallFlame, render_flame

    _smoke_adjust(args)
    config = _machine(args)
    flame = StallFlame(root=f"{args.workload}/{args.variant}")
    run_variant(
        _workload(args), config, args.variant,
        num_threads=args.threads,
        engine=args.engine,
        cleaner_period=args.cleaner_period,
        observers=[flame],
        provenance=True,
    )
    print(render_flame(flame, top=args.top))
    if flame.total_stall_cycles == 0 and config.timing == "functional":
        print(
            "\n(the functional timing model never stalls; rerun with "
            "--timing detailed for a populated flamegraph)"
        )
    out = args.out or f"{args.workload}-{args.variant}.collapsed"
    with open(out, "w") as fh:
        fh.write(flame.collapsed())
    print(
        f"\n[collapsed stacks saved to {out} — drag into "
        "speedscope.app or feed to flamegraph.pl/inferno]"
    )
    return 0


def _cmd_regress(args) -> int:
    """Regression sentinel: fresh runs vs committed perf baselines."""
    from repro.obs.baseline import (
        DEFAULT_SUITE,
        BaselineStore,
        RegressionReport,
        compare_case,
        measure_case,
    )

    store = BaselineStore(args.baselines)
    cache = _cache(args)
    wanted = set(args.cases.split(",")) if args.cases else None

    if args.update_baselines:
        cases = [
            c for c in DEFAULT_SUITE
            if wanted is None or c.case_id in wanted
        ]
        if not cases:
            raise SystemExit(f"no baseline cases match {args.cases!r}")
        for case in cases:
            baseline = measure_case(case, n_jobs=args.jobs, cache=cache)
            path = store.save(baseline)
            print(f"[baseline written: {path}]")
        return 0

    case_ids = [
        cid for cid in store.case_ids()
        if wanted is None or cid in wanted
    ]
    if not case_ids:
        raise SystemExit(
            f"no baselines under {store.root!r}"
            + (f" matching {args.cases!r}" if wanted else "")
            + "; measure them first with --update-baselines"
        )
    report = RegressionReport()
    for case_id in case_ids:
        report.verdicts.extend(
            compare_case(
                store.load(case_id),
                n_jobs=args.jobs,
                cache=cache,
                mistime=args.mistime,
            )
        )
    print(report.render())
    if cache is not None and cache.stats.lookups:
        print(f"\n[cache: {cache.stats.summary()} ({cache.root})]")
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    from repro.obs import RunReport, render_reports

    reports = [RunReport.load(path) for path in args.reports]
    print(render_reports(reports, fmt="md" if args.md else "text"))
    return 0


def _cmd_dashboard(args) -> int:
    """Render RunReports + harness telemetry as one static HTML page."""
    import json

    from repro.obs import RunReport, load_coverage_docs, render_dashboard

    reports = [RunReport.load(path) for path in args.reports]
    telemetry = None
    if args.telemetry:
        with open(args.telemetry) as fh:
            telemetry = json.load(fh)
        if not isinstance(telemetry, dict):
            raise SystemExit(
                f"{args.telemetry!r} is not a telemetry JSON object"
            )
    coverage = []
    for path in args.coverage or []:
        with open(path) as fh:
            try:
                coverage.extend(load_coverage_docs(json.load(fh)))
            except ValueError as exc:
                raise SystemExit(f"{path!r}: {exc}") from None
    if not reports and telemetry is None and not coverage:
        raise SystemExit(
            "dashboard needs report files, --telemetry, and/or --coverage"
        )
    html = render_dashboard(
        reports, telemetry=telemetry, coverage=coverage or None
    )
    with open(args.out, "w") as fh:
        fh.write(html)
    print(
        f"[dashboard: {len(reports)} report(s)"
        + (", telemetry" if telemetry is not None else "")
        + (
            f", {len(coverage)} coverage doc(s)" if coverage else ""
        )
        + f" -> {args.out}]"
    )
    return 0


def _cmd_watch(args) -> int:
    """Tail a telemetry journal; re-render the dashboard on change.

    The journal may still be written to (crashcheck/litmus/sweep with
    ``--journal``): reads are torn-line tolerant, and each render is a
    consistent snapshot of the events so far.  ``--once`` renders a
    single snapshot; otherwise the watcher polls until ``--max-seconds``
    elapses or it is interrupted.
    """
    from repro.obs import watch_once

    def size() -> int:
        try:
            return os.path.getsize(args.journal)
        except OSError:
            return -1

    rendered = watch_once(args.journal, args.out)
    print(f"[watch: {rendered} event(s) -> {args.out}]")
    if args.once:
        return 0
    deadline = (
        time.monotonic() + args.max_seconds
        if args.max_seconds is not None
        else None
    )
    last = size()
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(args.interval)
            current = size()
            if current != last:
                last = current
                rendered = watch_once(args.journal, args.out)
                print(f"[watch: {rendered} event(s) -> {args.out}]")
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_compare(args) -> int:
    variants = args.variants.split(",")
    results = compare_variants(
        _workload(args),
        _machine(args),
        variants,
        num_threads=args.threads,
        engine=args.engine,
        drain=True,  # count residual dirty lines: fair at small scale
        n_jobs=args.jobs,
        cache=_cache(args),
        obs_interval=args.obs_interval,
    )
    base_name = variants[0]
    base = results[base_name]
    rows = []
    for name in variants:
        r = results[name]
        writes = (
            r.total_writes / base.total_writes
            if base.total_writes
            else float("inf")
        )
        rows.append(
            [
                name,
                round(r.exec_cycles / base.exec_cycles, 4),
                round(writes, 4),
                round(r.l2_miss_rate, 3),
            ]
        )
    print(
        format_table(
            ["variant", f"exec (vs {base_name})", "writes", "L2MR"],
            rows,
            title=f"{args.workload}: variant comparison",
        )
    )
    return 0


def _cmd_crash(args) -> int:
    campaign = run_crash_campaign(
        _workload(args),
        _machine(args),
        crash_points=[args.at_op],
        num_threads=args.threads,
        engine=args.engine,
        cleaner_period=args.cleaner_period,
    )
    trial = campaign.trials[0]
    rows = [
        ["crashed", trial.crashed],
        ["writes before crash", trial.writes_before_crash],
        ["recovery ops", trial.recovery_ops],
        ["recovery cycles", round(trial.recovery_cycles)],
        ["output exact", trial.recovered_ok],
    ]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"{args.workload}+LP crash at op {args.at_op}",
        )
    )
    return 0 if trial.recovered_ok else 1


def _cmd_crashcheck(args) -> int:
    """Crash-state enumeration checker (see docs/crash_testing.md).

    Exit code 0 when every checked variant behaves as expected: sound
    variants pass on every reachable image, and deliberately broken
    variants (``Workload.broken_variants``) are flagged with a
    counterexample.  Anything else exits 1.
    """
    cls = get_workload(args.workload)
    params = {
        **_CRASHCHECK_PARAMS.get(args.workload, {}),
        **_parse_params(args.param),
    }
    workload = cls(**params)
    config = _machine(args)
    active_model = get_model(config.resolved_model)
    if not active_model.enumerable:
        print(
            f"error: crash-state enumeration is not available under the "
            f"{active_model.name!r} persistency model "
            f"({active_model.summary}).\n"
            f"Models that support `repro crashcheck`: "
            f"{', '.join(enumerable_model_names())}.",
            file=sys.stderr,
        )
        return 2
    if args.variants:
        variants = args.variants.split(",")
    else:
        # Only schemes with a persist protocol are worth checking:
        # ``base`` (and any other scheme declared unsound by design)
        # makes no durability promise, so "recovers from any crash"
        # would be a vacuous expectation.
        variants = [
            v for v in cls.variants if get_scheme(v).sound
        ]
        # Broken variants encode flush/fence-discipline bugs; under a
        # model whose stores are durable at once (eADR, strict) they
        # are genuinely sound, so "must be flagged" would be a false
        # expectation — leave them out of the default list there.
        if not active_model.persist_on_store:
            variants += list(cls.broken_variants)
    broken = (
        set()
        if active_model.persist_on_store
        else set(cls.broken_variants)
    )

    op_points, max_flush, max_events, samples = (
        args.points,
        args.max_flush_points,
        args.max_events,
        args.samples,
    )
    if args.exhaustive:
        # Push the exhaustive frontier up (2^14 images worst case per
        # point); points with even more reorderable events — e.g. WAL
        # log-write bursts of 17+ independent lines — stay sampled, or
        # checking a single point would take minutes.
        max_events = max(max_events, 14)
    if args.nightly:
        op_points = max(op_points, 32)
        max_flush = None  # every persist boundary
        max_events = max(max_events, 16)
        samples = max(samples, 256)

    cache = _cache(args)
    telemetry = None
    if args.journal:
        # Stream harness job spans into the same journal the workers
        # append their per-point coverage ticks to.
        from repro.analysis.runner import RunTelemetry
        from repro.obs import TelemetryJournal

        telemetry = RunTelemetry(journal=TelemetryJournal(path=args.journal))
    from repro.analysis.runner import collect_telemetry

    with collect_telemetry(telemetry):
        reports = run_crashcheck_campaign(
            workload,
            config,
            variants,
            op_points=op_points,
            max_flush_points=max_flush,
            max_exhaustive_events=max_events,
            samples=samples,
            seed=args.seed,
            num_threads=args.threads,
            engine=args.engine,
            cleaner_period=args.cleaner_period,
            n_jobs=args.jobs,
            cache=cache,
            replay=not args.full_recovery,
            journal_path=args.journal,
            progress=args.progress,
        )

    rows = []
    ok_overall = True
    for variant, report in reports.items():
        crashed_points = sum(1 for p in report.points if p.crashed)
        multi = sum(1 for p in report.points if p.images_checked > 1)
        exhaustive = all(p.exhaustive for p in report.points)
        if variant in broken:
            expected = "counterexample" if not report.ok else "MISSED BUG"
            ok_overall &= not report.ok
        else:
            expected = "pass" if report.ok else "FAIL"
            ok_overall &= report.ok
        rows.append(
            [
                variant,
                len(report.points),
                crashed_points,
                report.images_checked,
                multi,
                report.max_events,
                "yes" if exhaustive else "sampled",
                len(report.counterexamples),
                expected,
            ]
        )
    print(
        format_table(
            [
                "variant",
                "points",
                "crashed",
                "images",
                "multi-image",
                "max events",
                "exhaustive",
                "cex",
                "verdict",
            ],
            rows,
            title=f"{args.workload}: crash-state check",
        )
    )
    coverages = {v: report.coverage() for v, report in reports.items()}
    print()
    for cov in coverages.values():
        print(f"  [coverage] {cov.summary()}")
    for variant, report in reports.items():
        for cex in report.counterexamples[:3]:
            print(f"\n  {cex.describe()}")
        extra = len(report.counterexamples) - 3
        if extra > 0:
            print(f"  ... and {extra} more for {variant}")
    if args.coverage_out:
        import json

        docs = {cov.label: cov.to_dict() for cov in coverages.values()}
        with open(args.coverage_out, "w") as fh:
            json.dump(docs, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[coverage saved to {args.coverage_out}]")
    if args.cex_out:
        import json

        os.makedirs(args.cex_out, exist_ok=True)
        dumped = 0
        for variant, report in reports.items():
            for idx, cex in enumerate(report.counterexamples):
                path = os.path.join(
                    args.cex_out,
                    f"{args.workload}-{variant}-cex{idx:03d}.json",
                )
                with open(path, "w") as fh:
                    json.dump(cex.to_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                dumped += 1
        if dumped:
            print(f"\n[{dumped} counterexample(s) written to {args.cex_out}]")
    if cache is not None and cache.stats.lookups:
        print(f"\n[cache: {cache.stats.summary()} ({cache.root})]")
    return 0 if ok_overall else 1


def _cmd_litmus(args) -> int:
    """Cross-check the crash-state enumerator against each persistency
    model's declarative spec on a generated litmus corpus.

    Exit code 0 when every checked model behaves as expected: sound
    models produce exactly the spec's allowed image set on every
    program, and deliberately broken models (``broken=True`` in the
    registry) are flagged with at least one divergence.  ``--as-sound``
    drops the broken-model expectation inversion — every divergence
    then fails the run, which is how CI proves the harness actually
    catches the broken model (the command must exit 1).
    """
    import json

    from repro.verify.litmus import (
        DivergenceReport,
        check_model,
        generate_programs,
        replay_divergence,
    )

    if args.replay:
        with open(args.replay) as fh:
            report = DivergenceReport.from_dict(json.load(fh))
        result = replay_divergence(report)
        print(f"model:   {report.model} (spec: {report.spec})")
        print(f"program: {result.program.pretty()}")
        print(f"spec allows {len(result.spec_set)} image(s), "
              f"enumerator produced {len(result.run.sim_images)}")
        for key in result.missing:
            print(f"  missing from enumerator: {key}")
        for key in result.extra:
            print(f"  forbidden by spec:       {key}")
        print("verdict: " + ("still diverges" if not result.ok else "agrees"))
        return 0 if not result.ok else 1

    if args.models:
        models = args.models.split(",")
    else:
        models = enumerable_model_names()
    for name in models:
        get_model(name)  # fail fast on typos, before minutes of work

    programs = generate_programs(
        threads=args.threads,
        max_ops=args.max_ops,
        num_vars=args.vars,
        limit=args.limit,
    )
    print(
        f"litmus corpus: {len(programs)} programs "
        f"({args.threads} threads x <= {args.max_ops} ops, "
        f"{args.vars} vars)"
    )

    journal = None
    if args.journal:
        from repro.obs import TelemetryJournal

        journal = TelemetryJournal(path=args.journal)

    rows = []
    ok_overall = True
    all_reports = []
    coverages = []
    for name in models:
        verdict = check_model(name, programs, journal=journal)
        coverages.append(verdict.coverage())
        broken = verdict.broken and not args.as_sound
        if broken:
            expected = "divergence" if verdict.ok else "MISSED BUG"
            model_ok = verdict.ok
        else:
            model_ok = verdict.divergent == 0
            expected = "pass" if model_ok else "FAIL"
        ok_overall &= model_ok
        rows.append(
            [
                name,
                get_model(name).spec,
                verdict.programs_checked,
                verdict.divergent,
                "yes" if verdict.broken else "no",
                expected,
            ]
        )
        all_reports.extend(verdict.reports)
    print(
        format_table(
            ["model", "spec", "programs", "divergent", "broken", "verdict"],
            rows,
            title="persistency-model litmus cross-check",
        )
    )
    print()
    for cov in coverages:
        print(f"  [coverage] {cov.summary()}")
    if args.coverage_out:
        docs = {cov.label: cov.to_dict() for cov in coverages}
        with open(args.coverage_out, "w") as fh:
            json.dump(docs, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[coverage saved to {args.coverage_out}]")
    for report in all_reports[:3]:
        shrunk = report.shrunk
        print(
            f"\n  {report.model}: {shrunk['name']} -> "
            f"missing={len(report.missing)} extra={len(report.extra)}"
        )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for idx, report in enumerate(all_reports):
            path = os.path.join(
                args.out, f"litmus-{report.model}-div{idx:03d}.json"
            )
            with open(path, "w") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        if all_reports:
            print(
                f"\n[{len(all_reports)} divergence report(s) written "
                f"to {args.out}]"
            )
    return 0 if ok_overall else 1


def _cmd_idempotence(args) -> int:
    from repro.core.idempotence import classify_workload
    from repro.sim.machine import Machine

    report = classify_workload(
        _workload(args),
        Machine(_machine(args)),
        num_threads=args.threads,
        engine=args.engine,
    )
    summary = report.summary()
    rows = [[k, v] for k, v in summary.items()]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"{args.workload}: LP-region idempotence (section III-E)",
        )
    )
    if report.all_idempotent:
        print("\nall regions idempotent: recovery = re-run mismatched regions")
    else:
        sample = report.violating_regions[0]
        print(
            f"\nregions overwrite live-ins (e.g. {sample.label}: "
            f"{len(sample.overwritten_live_ins)} locations): recovery "
            "needs frontier/replay machinery"
        )
    return 0


def _cmd_reproduce(args) -> int:
    from repro.analysis.paperfigures import reproduce

    report = reproduce(
        scale=args.scale, n_jobs=args.jobs, obs_interval=args.obs_interval
    )
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"\n[report saved to {args.out}]")
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.runner import RunTelemetry, collect_telemetry

    wl = _workload(args)
    cfg = _machine(args)
    cache = _cache(args)
    engine_opts = dict(
        n_jobs=args.jobs, cache=cache, obs_interval=args.obs_interval
    )
    sink = None
    if args.journal:
        # Stream each job span / batch summary as it happens, instead
        # of (only) one telemetry document at exit.
        from repro.obs import TelemetryJournal

        sink = RunTelemetry(journal=TelemetryJournal(path=args.journal))
    with collect_telemetry(sink) as telemetry:
        return _run_sweep(args, wl, cfg, cache, engine_opts, telemetry)


def _run_sweep(args, wl, cfg, cache, engine_opts, telemetry) -> int:
    if args.kind == "checksum":
        out = sweeps.sweep_checksum(
            wl, cfg, available_engines(), num_threads=args.threads,
            **engine_opts,
        )
        rows = [
            [name, round(r.exec_cycles), r.nvmm_writes]
            for name, r in out.items()
        ]
        headers = ["engine", "exec cycles", "writes"]
    elif args.kind == "latency":
        points = [(120.0, 300.0), (210.0, 450.0), (300.0, 600.0)]
        out = sweeps.sweep_nvmm_latency(
            wl, cfg, points, variants=("base", "lp"),
            num_threads=args.threads, **engine_opts,
        )
        rows = [
            [
                f"{int(r / 2)}ns/{int(w / 2)}ns",
                round(res["lp"].exec_cycles / res["base"].exec_cycles, 4),
            ]
            for (r, w), res in out.items()
        ]
        headers = ["(read/write)", "LP exec vs base"]
    elif args.kind == "threads":
        counts = [1, 2, 4, 8]
        out = sweeps.sweep_threads(
            wl, cfg, counts, variants=("base", "lp"), **engine_opts
        )
        rows = [
            [
                p,
                round(res["base"].exec_cycles),
                round(res["lp"].exec_cycles),
            ]
            for p, res in out.items()
        ]
        headers = ["threads", "base cycles", "LP cycles"]
    else:  # cleaner
        periods = [1000.0, 10000.0, 100000.0, None]
        out = sweeps.sweep_cleaner_period(
            wl, cfg, periods, num_threads=args.threads, **engine_opts
        )
        rows = [
            [
                "none" if p is None else int(p),
                res.nvmm_writes,
                res.cleaner_writes,
            ]
            for p, res in out.items()
        ]
        headers = ["period (cycles)", "writes", "cleaner writes"]
    print(format_table(headers, rows, title=f"{args.workload}: {args.kind} sweep"))
    if cache is not None and cache.stats.lookups:
        print(f"\n[cache: {cache.stats.summary()} ({cache.root})]")
    counts = telemetry.counts()
    print(
        f"[harness: {counts['jobs']} jobs ({counts['hits']} cache hits, "
        f"{counts['runs']} runs) on {telemetry.workers} worker(s) in "
        f"{telemetry.wall_clock_s:.2f}s, "
        f"{100.0 * telemetry.utilization():.0f}% utilized]"
    )
    if args.telemetry_out:
        import json

        with open(args.telemetry_out, "w") as fh:
            json.dump(telemetry.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[telemetry saved to {args.telemetry_out}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy Persistency (ISCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, engines, presets")

    def common(p, machine_default="scaled"):
        # machine_default=None marks smoke-aware commands: REPRO_SMOKE=1
        # then selects the tiny preset (see _smoke_adjust).
        p.add_argument("workload", choices=available_workloads())
        p.add_argument("--threads", type=int, default=2)
        p.add_argument(
            "--machine", choices=sorted(_PRESETS), default=machine_default
        )
        p.add_argument("--engine", default="modular")
        timing_flag(p)
        model_flag(p)
        p.add_argument(
            "-p", "--param", action="append", metavar="KEY=VALUE",
            help="workload parameter (repeatable), e.g. -p n=48",
        )

    def model_flag(p):
        p.add_argument(
            "--model", choices=model_names(), default=DEFAULT_MODEL,
            help="persistency model (default: adr — the paper's "
            "platform; eadr puts the caches in the persistence domain, "
            "strict writes every store through, epoch orders but never "
            "commits, pre_adr is the pcommit-era completion-timed "
            "platform; eadr_nofence is deliberately broken for harness "
            "validation)",
        )

    def timing_flag(p):
        p.add_argument(
            "--timing", choices=sorted(TIMING_MODELS), default="detailed",
            help="timing model (default: detailed — paper-faithful "
            "latencies; functional is the fast +1-cycle model for "
            "semantics-only runs)",
        )

    def obs_flag(p):
        p.add_argument(
            "--obs-interval", type=float, default=None, metavar="CYCLES",
            help="sample the run into a CYCLES-wide interval time series "
            "(stalls, writes, queue depth per window; cached under a "
            "distinct key)",
        )

    def engine_flags(p):
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="run experiment points on N parallel processes",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="skip the on-disk result cache (always re-simulate)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="result cache location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-lazy-persistency)",
        )

    p_run = sub.add_parser("run", help="run one variant and print metrics")
    common(p_run)
    p_run.add_argument("--variant", default="lp", choices=scheme_names())
    p_run.add_argument("--cleaner-period", type=float, default=None)
    p_run.add_argument("--drain", action="store_true")
    obs_flag(p_run)
    p_run.add_argument(
        "--obs-out", default=None, metavar="FILE",
        help="write the interval series here (.csv for CSV, else JSON; "
        "needs --obs-interval)",
    )
    p_run.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write a RunReport manifest (JSON) for `repro report`",
    )
    p_run.add_argument(
        "--tier", choices=["machine", "stream"], default="machine",
        help="execution tier (stream: one recording replay run with "
        "observability batch-derived from the op stream; falls back "
        "to the machine path, with the reason printed, on points the "
        "stream format cannot encode)",
    )

    p_trace = sub.add_parser(
        "trace", help="record a run and export a Perfetto/Chrome trace"
    )
    common(p_trace, machine_default=None)
    p_trace.add_argument("--variant", default="lp", choices=scheme_names())
    p_trace.add_argument("--cleaner-period", type=float, default=None)
    p_trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="trace output path (default: <workload>-<variant>.trace.json)",
    )
    p_trace.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="also write a RunReport manifest (JSON)",
    )

    p_heatmap = sub.add_parser(
        "heatmap",
        help="per-line/per-region NVMM write heatmap (wear + coalescing)",
    )
    common(p_heatmap, machine_default=None)
    p_heatmap.add_argument("--variant", default="lp", choices=scheme_names())
    p_heatmap.add_argument(
        "--base-variant", default="base", metavar="VARIANT",
        help="non-persistent reference for per-region write "
        "amplification (default: base; 'none' disables the second run)",
    )
    p_heatmap.add_argument("--cleaner-period", type=float, default=None)
    p_heatmap.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="hot lines to list (default 10)",
    )
    p_heatmap.add_argument(
        "--out", default=None, metavar="FILE",
        help="export the full heatmap (.csv for per-line CSV, else JSON)",
    )

    p_flame = sub.add_parser(
        "flame",
        help="stall flamegraph: provenance x cause, collapsed-stack "
        "output for speedscope/inferno",
    )
    common(p_flame, machine_default=None)
    p_flame.add_argument("--variant", default="lp", choices=scheme_names())
    p_flame.add_argument("--cleaner-period", type=float, default=None)
    p_flame.add_argument(
        "--top", type=int, default=15, metavar="K",
        help="stacks to list in the text table (default 15)",
    )
    p_flame.add_argument(
        "--out", default=None, metavar="FILE",
        help="collapsed-stack output path "
        "(default: <workload>-<variant>.collapsed)",
    )

    p_regress = sub.add_parser(
        "regress",
        help="compare fresh runs against committed perf baselines; "
        "exits 1 on out-of-band slowdowns or write growth",
    )
    p_regress.add_argument(
        "--baselines", default="benchmarks/baselines", metavar="DIR",
        help="baseline store directory (default: benchmarks/baselines)",
    )
    p_regress.add_argument(
        "--update-baselines", action="store_true",
        help="re-measure and rewrite the baselines instead of gating "
        "(the ratchet: commit the diff)",
    )
    p_regress.add_argument(
        "--cases", default=None, metavar="ID,ID,...",
        help="restrict to these case ids (default: every baseline "
        "on disk, or the full suite with --update-baselines)",
    )
    p_regress.add_argument(
        "--mistime", type=float, default=None, metavar="FACTOR",
        help="scale core issue latencies on the fresh side (injected-"
        "slowdown proof that the gate trips; CI uses 1.2)",
    )
    engine_flags(p_regress)

    p_report = sub.add_parser(
        "report", help="render RunReport manifests as a comparison table"
    )
    p_report.add_argument(
        "reports", nargs="+", metavar="REPORT.json",
        help="RunReport files (from run/trace --report-out)",
    )
    p_report.add_argument(
        "--md", action="store_true", help="emit a markdown table"
    )

    p_dash = sub.add_parser(
        "dashboard",
        help="render RunReports + harness telemetry as a self-contained "
        "HTML dashboard (sparklines, heatmap bars, job timeline)",
    )
    p_dash.add_argument(
        "reports", nargs="*", metavar="REPORT.json",
        help="RunReport files (from run/trace --report-out)",
    )
    p_dash.add_argument(
        "-o", "--out", default="dashboard.html", metavar="FILE",
        help="output HTML path (default: dashboard.html)",
    )
    p_dash.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="harness telemetry JSON (from sweep --telemetry-out)",
    )
    p_dash.add_argument(
        "--coverage", action="append", default=None, metavar="FILE",
        help="verification-coverage JSON (from crashcheck/litmus "
        "--coverage-out; repeatable) rendered as a coverage panel",
    )

    p_watch = sub.add_parser(
        "watch",
        help="tail a telemetry journal (crashcheck/litmus/sweep "
        "--journal) and re-render the live dashboard HTML on change",
    )
    p_watch.add_argument(
        "journal", metavar="JOURNAL.jsonl",
        help="append-only journal file being written by a running "
        "campaign (may not exist yet)",
    )
    p_watch.add_argument(
        "-o", "--out", default="dashboard.html", metavar="FILE",
        help="output HTML path, rewritten atomically on every change "
        "(default: dashboard.html)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval (default 0.5)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit instead of tailing",
    )
    p_watch.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="stop tailing after S seconds (default: until ^C)",
    )

    p_cmp = sub.add_parser("compare", help="compare variants (normalized)")
    common(p_cmp)
    engine_flags(p_cmp)
    obs_flag(p_cmp)
    p_cmp.add_argument("--variants", default="base,lp,ep")

    p_crash = sub.add_parser("crash", help="crash an LP run and recover")
    common(p_crash)
    p_crash.add_argument("--at-op", type=int, required=True)
    p_crash.add_argument("--cleaner-period", type=float, default=None)

    p_cc = sub.add_parser(
        "crashcheck",
        help="check recovery against every reachable post-crash image",
    )
    p_cc.add_argument(
        "--workload", choices=available_workloads(), default="tmm",
        help="workload to check (default: tmm)",
    )
    p_cc.add_argument("--threads", type=int, default=2)
    p_cc.add_argument(
        "--machine", choices=sorted(_PRESETS), default="tiny",
        help="machine preset (default: tiny — small caches keep the "
        "reachable-image space enumerable)",
    )
    p_cc.add_argument("--engine", default="modular")
    timing_flag(p_cc)
    model_flag(p_cc)
    p_cc.add_argument(
        "--full-recovery", action="store_true",
        help="verify each image with a full-machine recovery run "
        "instead of the fast replay machine (slow; for benchmarking "
        "and belt-and-suspenders checks)",
    )
    p_cc.add_argument(
        "-p", "--param", action="append", metavar="KEY=VALUE",
        help="workload parameter (repeatable); defaults to a small "
        "crashcheck-friendly problem size",
    )
    p_cc.add_argument(
        "--variants", default=None,
        help="comma-separated variants (default: all non-base variants "
        "plus deliberately broken ones)",
    )
    p_cc.add_argument(
        "--points", type=int, default=8, metavar="N",
        help="evenly spaced at-op crash points (default 8)",
    )
    p_cc.add_argument(
        "--max-flush-points", type=int, default=32, metavar="N",
        help="cap on flush-boundary crash points (default 32)",
    )
    p_cc.add_argument(
        "--max-events", type=int, default=12, metavar="N",
        help="exhaustive enumeration frontier: points with more "
        "reorderable events than this are sampled (default 12)",
    )
    p_cc.add_argument(
        "--samples", type=int, default=64, metavar="N",
        help="sampled images per crash point above the frontier",
    )
    p_cc.add_argument("--seed", type=int, default=0)
    p_cc.add_argument(
        "--exhaustive", action="store_true",
        help="enumerate every reachable image at every crash point",
    )
    p_cc.add_argument(
        "--nightly", action="store_true",
        help="deep sweep: every flush boundary, dense op grid, more "
        "samples",
    )
    p_cc.add_argument(
        "--cex-out", default=None, metavar="DIR",
        help="dump every counterexample as JSON into DIR (created if "
        "missing); the nightly workflow uploads this as an artifact",
    )
    p_cc.add_argument("--cleaner-period", type=float, default=None)
    p_cc.add_argument(
        "--coverage-out", default=None, metavar="FILE",
        help="write per-variant CoverageStats JSON (how much of the "
        "crash-state space was checked) for `repro dashboard "
        "--coverage`",
    )
    p_cc.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append per-point campaign events and job spans to this "
        "JSONL telemetry journal while the campaign runs (tail it "
        "with `repro watch`); does not affect results or cache keys",
    )
    p_cc.add_argument(
        "--progress", action="store_true",
        help="print per-crash-point coverage ticks to stderr as they "
        "complete (off by default; independent of --journal)",
    )
    engine_flags(p_cc)

    p_litmus = sub.add_parser(
        "litmus",
        help="cross-check the crash-state enumerator against each "
        "persistency model's declarative spec on generated litmus "
        "programs",
    )
    p_litmus.add_argument(
        "--models", default=None, metavar="M,M,...",
        help="comma-separated persistency models (default: every "
        "enumerable model, including deliberately broken variants)",
    )
    p_litmus.add_argument(
        "--threads", type=int, default=2,
        help="threads per generated program (default 2)",
    )
    p_litmus.add_argument(
        "--max-ops", type=int, default=4, metavar="N",
        help="ops per generated thread (default 4)",
    )
    p_litmus.add_argument(
        "--vars", type=int, default=2, metavar="N",
        help="variables (one cache line each, max 4; default 2)",
    )
    p_litmus.add_argument(
        "--limit", type=int, default=48, metavar="N",
        help="corpus size: curated classics plus an evenly-strided "
        "slice of the systematic program space (default 48)",
    )
    p_litmus.add_argument(
        "--as-sound", action="store_true",
        help="hold broken models to the sound-model expectation (any "
        "divergence exits 1) — CI uses this to prove the harness "
        "flags them",
    )
    p_litmus.add_argument(
        "--out", default=None, metavar="DIR",
        help="dump shrunk divergence reports as JSON into DIR",
    )
    p_litmus.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay one divergence-report JSON and re-judge it "
        "(exit 0 if it still diverges)",
    )
    p_litmus.add_argument(
        "--coverage-out", default=None, metavar="FILE",
        help="write per-model CoverageStats JSON (programs, images, "
        "event-count epochs) for `repro dashboard --coverage`",
    )
    p_litmus.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append one litmus_program event per cross-checked "
        "program to this JSONL telemetry journal (`repro watch`)",
    )

    p_sweep = sub.add_parser("sweep", help="parameter sweeps")
    p_sweep.add_argument(
        "kind", choices=["checksum", "latency", "threads", "cleaner"]
    )
    common(p_sweep)
    engine_flags(p_sweep)
    obs_flag(p_sweep)
    p_sweep.add_argument(
        "--telemetry-out", default=None, metavar="FILE",
        help="write harness telemetry (per-job spans, cache stats, "
        "worker utilization) as JSON for `repro dashboard --telemetry`",
    )
    p_sweep.add_argument(
        "--journal", default=None, metavar="FILE",
        help="also stream job spans and batch summaries to this JSONL "
        "telemetry journal while the sweep runs (`repro watch`)",
    )

    p_idem = sub.add_parser(
        "idempotence", help="classify a workload's LP regions (III-E)"
    )
    common(p_idem)

    p_rep = sub.add_parser(
        "reproduce", help="compact end-to-end paper reproduction report"
    )
    p_rep.add_argument("--scale", choices=["smoke", "quick"], default="quick")
    p_rep.add_argument("--out", default=None, help="also write report here")
    p_rep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiment points on N parallel processes",
    )
    obs_flag(p_rep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "heatmap": _cmd_heatmap,
        "flame": _cmd_flame,
        "regress": _cmd_regress,
        "report": _cmd_report,
        "dashboard": _cmd_dashboard,
        "watch": _cmd_watch,
        "compare": _cmd_compare,
        "crash": _cmd_crash,
        "crashcheck": _cmd_crashcheck,
        "litmus": _cmd_litmus,
        "sweep": _cmd_sweep,
        "idempotence": _cmd_idempotence,
        "reproduce": _cmd_reproduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
