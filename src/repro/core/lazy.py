"""The Lazy Persistency programmer API (paper Figures 5 and 8).

:class:`LPRuntime` bundles a checksum engine with a collision-free
checksum table and exposes the three-call pattern of Figure 8::

    ck = lp.begin_region()              # ResetCheckSum()
    ...
    yield Store(addr, v)
    yield from ck.update(v)             # UpdateCheckSum(v)
    ...
    yield from lp.commit(ck, ii, kk, tid)   # HashTable[h] = GetCheckSum()

Nothing is flushed and no fences are issued: both the data and the
checksum reach NVMM by natural cache eviction.  After a crash,
:meth:`LPRuntime.region_is_consistent` replays the checksum over the
persistent image to decide whether the region needs recomputation.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Sequence

from repro.sim.isa import Op
from repro.sim.machine import Machine
from repro.core.checksum import ChecksumEngine, get_engine
from repro.core.hashtable import ChecksumTable
from repro.core.region import RegionChecksum


class LPRuntime:
    """Lazy Persistency over one checksum table."""

    def __init__(
        self,
        machine: Machine,
        table_name: str,
        dims: Sequence[int],
        engine: "ChecksumEngine | str" = "modular",
        create: bool = True,
    ) -> None:
        self.engine = get_engine(engine) if isinstance(engine, str) else engine
        self.table = ChecksumTable(
            machine, table_name, dims, self.engine, create=create
        )
        self.machine = machine

    @classmethod
    def attach(
        cls,
        machine: Machine,
        table_name: str,
        dims: Sequence[int],
        engine: "ChecksumEngine | str" = "modular",
    ) -> "LPRuntime":
        """Re-attach to an existing table (post-crash recovery path)."""
        return cls(machine, table_name, dims, engine, create=False)

    # -- normal execution ---------------------------------------------------

    def begin_region(self) -> RegionChecksum:
        """ResetCheckSum(): a fresh running checksum for a new region."""
        return RegionChecksum(self.engine)

    def commit(
        self, ck: RegionChecksum, *key: int
    ) -> Generator[Op, Optional[float], None]:
        """Store the region's checksum to its table slot, lazily."""
        yield from self.table.commit_lazy(ck.value, *key)

    def commit_eager(
        self, ck: RegionChecksum, *key: int
    ) -> Generator[Op, Optional[float], None]:
        """Eagerly-persisted checksum commit (the III-D alternative)."""
        yield from self.table.commit_eager(ck.value, *key)

    # -- recovery side --------------------------------------------------------

    def region_is_consistent(
        self, persisted_values: Iterable[float], *key: int
    ) -> bool:
        """Figure 5(c): recompute over persisted data, compare to slot.

        False on mismatch *or* if the region never committed a
        checksum — both require recomputation.
        """
        return self.table.matches(persisted_values, *key)

    def region_committed(self, *key: int) -> bool:
        """True if any checksum for this region ever persisted."""
        return self.table.is_committed(*key)

    @property
    def space_overhead_bytes(self) -> int:
        """Table footprint (the paper reports ~1% of the matrices)."""
        return self.table.size_bytes
