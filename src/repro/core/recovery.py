"""Recovery drivers (paper section III-E and Figure 9, generalised).

Recovery is workload-specific — each workload module implements its own
``recover()`` — but the structure the paper describes for TMM recurs in
every in-place kernel:

1. scan the checksum table in **reverse program order** over the major
   (output-dependent) loop;
2. the first major step with at least one matching region marks the
   **restart frontier**: everything before it is either consistent or
   repairable within that step, everything after it never ran or is
   fully void;
3. repair inconsistent regions at the frontier, then resume normal
   execution after it — all with *Eager* Persistency, so a crash during
   recovery cannot lose progress.

:func:`find_restart_frontier` implements step 1-2; the
:class:`RecoveryReport` aggregates what a recovery run did so tests
and experiments can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


@dataclass
class RecoveryReport:
    """What one recovery pass observed and did."""

    #: Major step from which normal execution resumes (None = from scratch).
    frontier: Optional[int] = None
    regions_checked: int = 0
    regions_consistent: int = 0
    regions_repaired: int = 0
    #: Simulated cycles spent by the recovery machine (if timed).
    recovery_cycles: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def recomputed_fraction(self) -> float:
        if self.regions_checked == 0:
            return 0.0
        return self.regions_repaired / self.regions_checked

    def note(self, msg: str) -> None:
        """Append a free-form diagnostic note."""
        self.notes.append(msg)


def find_restart_frontier(
    majors: Sequence[int],
    minors: Sequence[int],
    is_consistent: Callable[[int, int], bool],
    report: Optional[RecoveryReport] = None,
) -> Optional[int]:
    """Figure 9's reverse scan.

    Walk ``majors`` (e.g. kk tiles) from last to first; the first major
    with at least one consistent minor region (e.g. an ii tile whose
    checksum matches) is the restart frontier.  Returns None when no
    region anywhere is consistent — recovery must recompute from the
    beginning.
    """
    for major in reversed(list(majors)):
        for minor in minors:
            if report is not None:
                report.regions_checked += 1
            if is_consistent(major, minor):
                if report is not None:
                    report.frontier = major
                    report.regions_consistent += 1
                return major
    return None


def partition_regions(
    minors: Iterable[int],
    is_consistent: Callable[[int], bool],
) -> Tuple[List[int], List[int]]:
    """Split one major step's regions into (consistent, inconsistent)."""
    good: List[int] = []
    bad: List[int] = []
    for minor in minors:
        (good if is_consistent(minor) else bad).append(minor)
    return good, bad
