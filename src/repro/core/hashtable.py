"""Standalone checksum hash table (paper Figure 7(b)).

The paper rejects embedding checksums into the protected data structure
(space overhead, programming complexity, layout interference) in favour
of a standalone table indexed by a collision-free key: for TMM the key
is (ii, kk, thread id) and the table has exactly one slot per region,
so no locks are needed — different threads hit disjoint slots.

Slots are initialised to :data:`INVALID_CHECKSUM` so recovery can tell
"region never committed a checksum" apart from "checksum mismatch"
(section IV's NaN / -1 discussion).
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.address import Region
from repro.sim.isa import Compute, Fence, Flush, Op, Store
from repro.sim.machine import Machine
from repro.core.checksum import ChecksumEngine

#: Sentinel stored in never-written slots.  Real checksums are
#: non-negative integers, so -1 is unreachable.
INVALID_CHECKSUM = -1.0

#: Arithmetic cost of computing a slot index from the key.
_HASH_FLOPS = 1.0


class ChecksumTable:
    """A persistent, collision-free checksum table.

    ``dims`` gives the extent of each key component; the table has
    ``prod(dims)`` slots and key ``(k0, k1, ...)`` maps to the unique
    slot ``k0*dims[1]*dims[2]*... + k1*dims[2]*... + ...`` — the
    paper's "our design eliminates hash collisions".
    """

    def __init__(
        self,
        machine: Machine,
        name: str,
        dims: Sequence[int],
        engine: ChecksumEngine,
        create: bool = True,
    ) -> None:
        if not dims or any(d <= 0 for d in dims):
            raise ConfigError(f"bad checksum table dims {dims!r}")
        self.machine = machine
        self.dims = tuple(dims)
        self.engine = engine
        num_slots = 1
        for d in self.dims:
            num_slots *= d
        self.num_slots = num_slots
        if create:
            self.region: Region = machine.alloc_init(
                name, [INVALID_CHECKSUM] * num_slots
            )
        else:
            # Re-attach (e.g. on the post-crash machine): the region and
            # its persistent contents already exist.
            self.region = machine.region(name)
            if self.region.num_elements != num_slots:
                raise ConfigError(
                    f"existing table {name!r} has "
                    f"{self.region.num_elements} slots, expected {num_slots}"
                )

    # -- keying ------------------------------------------------------------

    def slot(self, *key: int) -> int:
        """Map a multi-dimensional key to its unique slot index."""
        if len(key) != len(self.dims):
            raise ConfigError(
                f"key {key!r} has {len(key)} components, table has "
                f"{len(self.dims)} dimensions"
            )
        index = 0
        for k, d in zip(key, self.dims):
            if not 0 <= k < d:
                raise ConfigError(f"key component {k} out of range [0,{d})")
            index = index * d + k
        return index

    def slot_addr(self, *key: int) -> int:
        """Element address of a key's (unique) table slot."""
        return self.region.addr(self.slot(*key))

    # -- program-side ops (generators to ``yield from``) --------------------

    def commit_lazy(
        self, checksum: int, *key: int
    ) -> Generator[Op, Optional[float], None]:
        """Store a region's checksum with Lazy Persistency (Figure 8).

        One hash-index computation and one plain store: the checksum
        reaches NVMM by natural eviction like everything else.
        """
        yield Compute(_HASH_FLOPS)
        yield Store(self.slot_addr(*key), float(checksum))

    def commit_eager(
        self, checksum: int, *key: int
    ) -> Generator[Op, Optional[float], None]:
        """Store + clflushopt + sfence (the Eager alternative of III-D)."""
        yield Compute(_HASH_FLOPS)
        addr = self.slot_addr(*key)
        yield Store(addr, float(checksum))
        yield Flush(addr)
        yield Fence()

    # -- recovery-side inspection (no timing: runs on the NVMM image) -------

    def persisted_checksum(self, *key: int) -> float:
        """The slot's value in the NVMM image (recovery view)."""
        return self.machine.mem.persisted(self.slot_addr(*key), INVALID_CHECKSUM)

    def is_committed(self, *key: int) -> bool:
        """True if any checksum for this region ever persisted."""
        return self.persisted_checksum(*key) != INVALID_CHECKSUM

    def matches(self, values: Iterable[float], *key: int) -> bool:
        """Recompute a checksum over ``values`` and compare (Figure 5c).

        ``values`` must be read from the persistent image in the same
        order the region originally updated its checksum.
        """
        stored = self.persisted_checksum(*key)
        if stored == INVALID_CHECKSUM:
            return False
        return float(self.engine.of_values(values)) == stored

    def committed_keys(self) -> Tuple[int, ...]:
        """Slots holding a committed checksum (diagnostics/tests)."""
        return tuple(
            i
            for i in range(self.num_slots)
            if self.machine.mem.persisted(self.region.addr(i), INVALID_CHECKSUM)
            != INVALID_CHECKSUM
        )

    @property
    def size_bytes(self) -> int:
        return self.region.size_bytes
