"""Per-region running checksum (the paper's ResetCheckSum /
UpdateCheckSum / GetCheckSum of Figure 8).

A :class:`RegionChecksum` lives in registers during normal execution —
only its committed value ever touches memory — so an update costs just
the engine's arithmetic, which is the whole point of Lazy Persistency's
near-zero overhead.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.isa import Compute, Op
from repro.core.checksum import ChecksumEngine


class RegionChecksum:
    """Running checksum for one LP region."""

    def __init__(self, engine: ChecksumEngine) -> None:
        self.engine = engine
        self._state = engine.reset()
        self.updates = 0

    def reset(self) -> None:
        """ResetCheckSum(): start a new region."""
        self._state = self.engine.reset()
        self.updates = 0

    def update(self, value: float) -> Generator[Op, Optional[float], None]:
        """UpdateCheckSum(value): fold a stored value in.

        A generator so workloads can ``yield from`` it; charges the
        engine's arithmetic cost to the issuing core.
        """
        self._state = self.engine.update(self._state, value)
        self.updates += 1
        yield Compute(self.engine.flops_per_update)

    def update_silent(self, value: float) -> None:
        """Fold a value in without charging simulation cost.

        Used by recovery-side validation where the caller accounts for
        the loads itself, and by tests.
        """
        self._state = self.engine.update(self._state, value)
        self.updates += 1

    @property
    def value(self) -> int:
        """GetCheckSum(): the committable checksum."""
        return self.engine.finalize(self._state)
