"""Error-detection codes for LP regions (paper section III-D).

The paper weighs three codes plus a parallel combination:

* **Parity** — XOR of all values; cheapest, weakest (misses any error
  pattern that XORs to zero, e.g. the same wrong value twice).
* **Modular checksum** — 32-bit modular sum; the paper's default
  (accuracy better than 2e-9 missed-error probability at ~0.2% cost).
* **Adler-32** — the zlib checksum; strong but noticeably costlier.
* **Parallel modular+parity** — both at once for a lower false-negative
  rate at a higher compute cost (Figure 15b).

Engines are *pure*: state in, state out.  Values are hashed by their
IEEE-754 bit pattern, so a checksum recomputed during recovery from
persisted data matches exactly if and only if the data persisted.

``flops_per_update`` is the compute cost a workload charges per
``UpdateCheckSum`` call; the relative costs reproduce the Figure 15b
ordering (parity < modular < parallel < adler).
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Dict, Type

from repro.errors import ConfigError

_MASK32 = 0xFFFFFFFF
_ADLER_MOD = 65521


def value_bits(value: float) -> int:
    """The 64-bit IEEE-754 pattern of a value (ints go through float)."""
    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


class ChecksumEngine(ABC):
    """A streaming error-detection code over a region's stored values."""

    #: Registry / display name.
    name: str = "abstract"
    #: Arithmetic ops charged per UpdateCheckSum call.
    flops_per_update: float = 1.0
    #: Extra table stores per region commit (1 for single checksums).
    words_per_commit: int = 1

    @abstractmethod
    def reset(self) -> int:
        """Initial accumulator state for a fresh region."""

    @abstractmethod
    def update(self, state: int, value: float) -> int:
        """Fold one stored value into the accumulator."""

    @abstractmethod
    def finalize(self, state: int) -> int:
        """The value written into the checksum table."""

    def of_values(self, values) -> int:
        """Checksum of an iterable of values (recovery-side helper)."""
        state = self.reset()
        for v in values:
            state = self.update(state, v)
        return self.finalize(state)


class ParityChecksum(ChecksumEngine):
    """XOR of all value bit patterns, folded to 32 bits."""

    name = "parity"
    flops_per_update = 0.5

    def reset(self) -> int:
        return 0

    def update(self, state: int, value: float) -> int:
        return state ^ value_bits(value)

    def finalize(self, state: int) -> int:
        return (state ^ (state >> 32)) & _MASK32


class ModularChecksum(ChecksumEngine):
    """32-bit modular sum over the data's 32-bit words (paper default).

    Each 64-bit value contributes both of its 32-bit halves, so a
    change anywhere in the pattern moves the sum (summing only one
    half would be blind to small-integer doubles, whose low mantissa
    words are all zero).
    """

    name = "modular"
    flops_per_update = 1.0

    def reset(self) -> int:
        return 0

    def update(self, state: int, value: float) -> int:
        bits = value_bits(value)
        return (state + (bits & _MASK32) + (bits >> 32)) & _MASK32

    def finalize(self, state: int) -> int:
        return state & _MASK32


class Adler32Checksum(ChecksumEngine):
    """Adler-32 over each value's 8 little-endian bytes (zlib-style)."""

    name = "adler32"
    flops_per_update = 5.0

    def reset(self) -> int:
        # state packs (b << 16) | a with a starting at 1, like zlib.
        return 1

    def update(self, state: int, value: float) -> int:
        a = state & 0xFFFF
        b = (state >> 16) & 0xFFFF
        for byte in struct.pack("<d", float(value)):
            a = (a + byte) % _ADLER_MOD
            b = (b + a) % _ADLER_MOD
        return (b << 16) | a

    def finalize(self, state: int) -> int:
        return state & _MASK32


class ParallelChecksum(ChecksumEngine):
    """Modular sum and parity computed side by side (Figure 15b).

    The two 32-bit codes are packed into one 64-bit table word; an
    error must collide in both simultaneously to go undetected.

    ``flops_per_update`` is calibrated to Figure 15b, where the paper
    measures the parallel combination as the *costliest* option (3.4%
    vs Adler-32's ~1%): maintaining two accumulators serialises the
    update dependence chain, and the packing/unpacking of the 64-bit
    state adds ALU work beyond the two raw code updates.
    """

    name = "parallel"
    flops_per_update = 8.0
    words_per_commit = 2

    def __init__(self) -> None:
        self._modular = ModularChecksum()
        self._parity = ParityChecksum()

    def reset(self) -> int:
        return 0

    def update(self, state: int, value: float) -> int:
        mod = (state >> 32) & _MASK32
        par = state & _MASK32
        mod = self._modular.update(mod, value)
        # fold parity progressively so intermediate state stays 32-bit
        par = (par ^ value_bits(value) ^ (value_bits(value) >> 32)) & _MASK32
        return (mod << 32) | par

    def finalize(self, state: int) -> int:
        return state


_ENGINES: Dict[str, Type[ChecksumEngine]] = {
    cls.name: cls
    for cls in (ParityChecksum, ModularChecksum, Adler32Checksum, ParallelChecksum)
}


def get_engine(name: str) -> ChecksumEngine:
    """Instantiate a checksum engine by its registry name."""
    try:
        return _ENGINES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown checksum engine {name!r}; "
            f"available: {sorted(_ENGINES)}"
        ) from None


def available_engines() -> list:
    """Sorted names of the registered checksum engines."""
    return sorted(_ENGINES)
