"""Durable transactions with write-ahead logging (paper Figure 2).

The ``tmm+WAL`` baseline: every transaction performs the full PMEM
sequence — create undo-log entries, flush them, fence, mark the log
valid, flush, fence, perform and flush the data stores, fence, mark
the log invalid, flush, fence.  Four flush+fence sets per transaction,
exactly the cost anatomy section II-A walks through, which is why WAL
lands at ~6x execution time and ~4x writes in Figure 10.

The log is an undo log: entries hold (address, old value).  On
recovery, a persistent status of 1 means the crash hit between log
validation and commit, so logged old values are restored (eagerly);
status 0 means the data region is either untouched or fully committed.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, RecoveryError
from repro.sim.isa import Fence, Flush, Load, Op, Store
from repro.sim.machine import Machine
from repro.core.eager import persist_addrs, persist_region

#: log header slots (share one line, so one flush covers the header)
_STATUS = 0
_COUNT = 1
_HEADER_ELEMS = 8  # pad to a full line


class WriteAheadLog:
    """A per-thread undo log with a durable status word."""

    def __init__(
        self, machine: Machine, name: str, capacity: int, create: bool = True
    ) -> None:
        if capacity <= 0:
            raise ConfigError("log capacity must be positive")
        self.machine = machine
        self.capacity = capacity
        # header line + (addr, old) pairs
        if create:
            self.region = machine.alloc(name, _HEADER_ELEMS + 2 * capacity)
        else:
            self.region = machine.region(name)

    @classmethod
    def attach(cls, machine: Machine, name: str, capacity: int) -> "WriteAheadLog":
        """Re-attach to an existing log (post-crash recovery path)."""
        return cls(machine, name, capacity, create=False)

    # -- addressing ---------------------------------------------------------

    @property
    def status_addr(self) -> int:
        return self.region.addr(_STATUS)

    @property
    def count_addr(self) -> int:
        return self.region.addr(_COUNT)

    def entry_addrs(self, i: int) -> Tuple[int, int]:
        """(address-slot, value-slot) element addresses of entry i."""
        base = _HEADER_ELEMS + 2 * i
        return self.region.addr(base), self.region.addr(base + 1)

    # -- the durable transaction (Figure 2) ----------------------------------

    def transaction(
        self, writes: Sequence[Tuple[int, float]]
    ) -> Generator[Op, Optional[float], None]:
        """Durably apply ``writes`` = [(addr, new_value), ...]."""
        if len(writes) > self.capacity:
            raise ConfigError(
                f"transaction of {len(writes)} writes exceeds log "
                f"capacity {self.capacity}"
            )

        # 1. create log entries: old values, then flush the log.
        log_addrs: List[int] = [self.count_addr]
        for i, (addr, _) in enumerate(writes):
            old = yield Load(addr)
            a_addr, v_addr = self.entry_addrs(i)
            yield Store(a_addr, addr)
            yield Store(v_addr, old)
            log_addrs.extend((a_addr, v_addr))
        yield Store(self.count_addr, float(len(writes)))
        yield from persist_region(log_addrs)  # flushes + SFENCE (set 1)

        # 2. validate the log.
        yield Store(self.status_addr, 1.0)
        yield Flush(self.status_addr)
        yield Fence()  # set 2

        # 3. perform and persist the data writes.
        for addr, value in writes:
            yield Store(addr, value)
        yield from persist_addrs(addr for addr, _ in writes)
        yield Fence()  # set 3

        # 4. invalidate the log.
        yield Store(self.status_addr, 0.0)
        yield Flush(self.status_addr)
        yield Fence()  # set 4

    # -- recovery -------------------------------------------------------------

    def needs_recovery(self) -> bool:
        """True if a crash interrupted a validated transaction."""
        return self.machine.mem.persisted(self.status_addr, 0.0) == 1.0

    def recovery_ops(self) -> Generator[Op, Optional[float], None]:
        """Roll back the interrupted transaction (Eager, forward-safe)."""
        if not self.needs_recovery():
            return
        count = self.machine.mem.persisted(self.count_addr, 0.0)
        restored: List[int] = []
        for i in range(int(count)):
            a_addr, v_addr = self.entry_addrs(i)
            target = yield Load(a_addr)
            old = yield Load(v_addr)
            if target is None or old is None:
                raise RecoveryError("log entry unreadable during recovery")
            yield Store(int(target), old)
            restored.append(int(target))
        yield from persist_region(restored)
        yield Store(self.status_addr, 0.0)
        yield Flush(self.status_addr)
        yield Fence()
