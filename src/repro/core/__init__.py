"""The paper's contribution: the Lazy Persistency runtime.

Lazy Persistency (LP) lets dirty data reach NVMM through natural cache
evictions instead of eager flushes.  Failure detection is a software
checksum per *LP region*; recovery recomputes regions whose persistent
data does not match their persistent checksum.

This package provides:

* :mod:`repro.core.checksum` — the error-detection codes the paper
  evaluates (parity, modular, Adler-32, parallel modular+parity);
* :mod:`repro.core.hashtable` — the standalone checksum hash table of
  Figure 7(b), collision-free by key construction;
* :mod:`repro.core.region` — the per-region running checksum;
* :mod:`repro.core.lazy` — the LP programmer API
  (ResetCheckSum / UpdateCheckSum / commit of Figure 8);
* :mod:`repro.core.eager` — Eager Persistency helpers used by the
  EagerRecompute baseline and by LP's own recovery code;
* :mod:`repro.core.wal` — PMEM-style durable transactions with
  write-ahead logging (Figure 2);
* :mod:`repro.core.recovery` — recovery drivers (Figure 9 generalised);
* :mod:`repro.core.accuracy` — the section III-D checksum accuracy
  (error injection) study.
"""

from repro.core.checksum import (
    Adler32Checksum,
    ChecksumEngine,
    ModularChecksum,
    ParallelChecksum,
    ParityChecksum,
    get_engine,
)
from repro.core.hashtable import INVALID_CHECKSUM, ChecksumTable
from repro.core.idempotence import (
    IdempotenceReport,
    RegionFootprint,
    analyze_trace,
    classify_workload,
)
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.core.eager import persist_addrs, persist_region
from repro.core.wal import WriteAheadLog

__all__ = [
    "Adler32Checksum",
    "ChecksumEngine",
    "ModularChecksum",
    "ParallelChecksum",
    "ParityChecksum",
    "get_engine",
    "INVALID_CHECKSUM",
    "ChecksumTable",
    "IdempotenceReport",
    "RegionFootprint",
    "analyze_trace",
    "classify_workload",
    "LPRuntime",
    "RegionChecksum",
    "persist_addrs",
    "persist_region",
    "WriteAheadLog",
]
