"""Eager Persistency helpers (PMEM-style flush + fence sequences).

These are the building blocks of the paper's baselines and of LP's own
recovery code (which is deliberately Eager to guarantee forward
progress, section III-E): ``clflushopt`` every line covering a set of
addresses, then one ``sfence``.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from repro.sim.address import line_of
from repro.sim.isa import Fence, Flush, FlushWB, Op, Store


def lines_covering(addrs: Iterable[int]) -> list:
    """Distinct line addresses covering ``addrs``, in first-seen order.

    clflushopt works on whole lines, so flushing a 16-element stride
    that spans two lines takes two flushes — this dedupe is what lets
    the paper say a bsize tile row "can be persisted using only one
    clflushopt".
    """
    seen = []
    seen_set = set()
    for addr in addrs:
        line = line_of(addr)
        if line not in seen_set:
            seen_set.add(line)
            seen.append(line)
    return seen


def persist_addrs(addrs: Iterable[int]) -> Generator[Op, Optional[float], None]:
    """clflushopt every line under ``addrs`` (no fence)."""
    for line in lines_covering(addrs):
        yield Flush(line)


def writeback_addrs(addrs: Iterable[int]) -> Generator[Op, Optional[float], None]:
    """clwb every line under ``addrs`` (no fence): persist but keep the
    lines cached.

    x86 provides clwb precisely for data that will be read again soon
    after being persisted; Eager variants of kernels that immediately
    re-read their own output (e.g. Cholesky's left-looking columns) use
    this instead of clflushopt so the eager cost is the flush + fence
    traffic itself, not an artificial invalidation-refetch storm that
    the paper's out-of-order cores would have overlapped.
    """
    for line in lines_covering(addrs):
        yield FlushWB(line)


def persist_region(addrs: Iterable[int]) -> Generator[Op, Optional[float], None]:
    """clflushopt every line under ``addrs``, then sfence.

    The canonical Eager Persistency "make this durable now" sequence.
    """
    yield from persist_addrs(addrs)
    yield Fence()


def durable_store(addr: int, value: float) -> Generator[Op, Optional[float], None]:
    """store; clflushopt; sfence — one durably ordered store."""
    yield Store(addr, value)
    yield Flush(addr)
    yield Fence()
