"""Idempotent-region analysis (paper section III-E).

The paper notes that when LP regions are *idempotent* — re-executable
without changing the program's output — recovery code is trivially the
region code itself, and that such regions "can be identified through
compiler analysis" (citing de Kruijf et al.).  This module is that
analysis, applied dynamically: record a region's memory footprint and
check the idempotence criterion.

A region is idempotent iff it never **overwrites a live-in**: no
location is loaded before the region's own store to it and stored
later in the same region.  (Re-running such a region would read its
own previous output instead of the original input.)  Reads of
locations the region wrote *earlier* are fine — re-execution
regenerates them identically.

Applied to the Table V kernels this reproduces exactly the recovery
split the workloads implement:

* conv2d, fft, cholesky — idempotent regions, recompute-in-place
  recovery;
* tmm, gauss — regions overwrite live-ins (c accumulates, elimination
  updates rows in place), so recovery needs the reverse-frontier /
  replay machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.isa import Load, Op, RegionMark, Store
from repro.sim.machine import Machine, ThreadGen
from repro.sim.trace import Trace


@dataclass
class RegionFootprint:
    """Memory footprint of one executed region."""

    label: str
    #: Addresses loaded before this region stored them (live-ins).
    live_ins: Set[int] = field(default_factory=set)
    #: All addresses the region stored.
    stores: Set[int] = field(default_factory=set)
    loads: int = 0
    store_ops: int = 0

    @property
    def overwritten_live_ins(self) -> Set[int]:
        """Live-in locations the region also writes — the idempotence
        violations."""
        return self.live_ins & self.stores

    @property
    def is_idempotent(self) -> bool:
        return not self.overwritten_live_ins

    def observe(self, op: Op) -> None:
        """Fold one op into the footprint."""
        if isinstance(op, Load):
            self.loads += 1
            if op.addr not in self.stores:
                self.live_ins.add(op.addr)
        elif isinstance(op, Store):
            self.store_ops += 1
            self.stores.add(op.addr)


@dataclass
class IdempotenceReport:
    """Classification of every region observed in a run."""

    regions: List[RegionFootprint] = field(default_factory=list)

    @property
    def all_idempotent(self) -> bool:
        return all(r.is_idempotent for r in self.regions)

    @property
    def violating_regions(self) -> List[RegionFootprint]:
        return [r for r in self.regions if not r.is_idempotent]

    def summary(self) -> Dict[str, int]:
        """Counts of total / idempotent / violating regions."""
        return {
            "regions": len(self.regions),
            "idempotent": sum(1 for r in self.regions if r.is_idempotent),
            "violating": len(self.violating_regions),
        }


def analyze_trace(trace: Trace) -> IdempotenceReport:
    """Split a recorded trace at RegionMarks and classify each region.

    Ops before the first mark form an implicit preamble region only if
    they touch memory; marker-only boundaries follow the convention the
    workloads use (one RegionMark at each region *start*).
    """
    report = IdempotenceReport()
    current: Optional[RegionFootprint] = None
    for op, _result in trace.events:
        if isinstance(op, RegionMark):
            current = RegionFootprint(label=op.label)
            report.regions.append(current)
            continue
        if current is None:
            if isinstance(op, (Load, Store)):
                current = RegionFootprint(label="<preamble>")
                report.regions.append(current)
            else:
                continue
        current.observe(op)
    return report


def classify_workload(
    workload,
    machine: Machine,
    variant: str = "lp",
    num_threads: int = 1,
    engine: str = "modular",
) -> IdempotenceReport:
    """Run a workload with tracing and classify its LP regions.

    The checksum-table commit at a region's end stores to a slot the
    region never reads, so it cannot break idempotence; the data
    accesses decide.
    """
    from repro.sim.trace import traced

    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    traces = [Trace() for _ in range(num_threads)]
    threads: List[ThreadGen] = [
        traced(gen, tr) for gen, tr in zip(bound.threads(variant), traces)
    ]
    machine.run(threads)
    report = IdempotenceReport()
    for tr in traces:
        report.regions.extend(analyze_trace(tr).regions)
    return report
