"""Checksum accuracy study (paper section III-D).

The paper injects random errors into matrix elements and asks whether
any injected error produces the *same* checksum as the error-free data
(a false negative: the persistency failure would go undetected).  They
report a missed-error probability below 2e-9 for both the modular and
Adler-32 checksums, with parity noticeably weaker.

Two error models:

* ``"stale"`` — a random subset of elements reverts to earlier values,
  which is exactly what an unpersisted store looks like after a crash;
* ``"paired"`` — two elements receive an *identical* bit-pattern
  corruption.  XOR-based parity is structurally blind to this (the two
  flips cancel), which demonstrates why the paper ranks parity's
  detection accuracy worst.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.core.checksum import ChecksumEngine


@dataclass
class AccuracyResult:
    """Outcome of an error-injection campaign against one engine."""

    engine: str
    error_model: str
    trials: int
    missed: int
    #: trials where the injected "error" left the data identical (skipped).
    degenerate: int = 0
    examples: List[tuple] = field(default_factory=list)

    @property
    def effective_trials(self) -> int:
        return self.trials - self.degenerate

    @property
    def miss_probability(self) -> float:
        if self.effective_trials == 0:
            return 0.0
        return self.missed / self.effective_trials

    @property
    def miss_probability_upper_bound(self) -> float:
        """95% (rule-of-three) upper bound when no miss was observed."""
        if self.effective_trials == 0:
            return 1.0
        if self.missed == 0:
            return 3.0 / self.effective_trials
        return self.miss_probability


def _inject_stale(values, rng: random.Random) -> List[float]:
    """Revert a random non-empty subset to stale (earlier) values."""
    corrupted = list(values)
    k = rng.randint(1, max(1, len(values) // 4))
    for idx in rng.sample(range(len(values)), k):
        # the "previous" value a crash would expose: an older accumulation
        corrupted[idx] = float(rng.randint(0, 1 << 30))
    return corrupted

def _inject_paired(values, rng: random.Random) -> List[float]:
    """XOR the same bit mask into two distinct elements' patterns.

    The two flips cancel in an XOR parity, so parity can never detect
    this class of error; sum-based codes almost always do.
    """
    import struct

    if len(values) < 2:
        raise ConfigError("paired injection needs at least 2 elements")
    corrupted = list(values)
    i, j = rng.sample(range(len(values)), 2)
    # flip low-mantissa bits only, so values stay finite and comparable
    mask = rng.randint(1, (1 << 30) - 1)
    for idx in (i, j):
        bits = struct.unpack("<Q", struct.pack("<d", corrupted[idx]))[0]
        corrupted[idx] = struct.unpack("<d", struct.pack("<Q", bits ^ mask))[0]
    return corrupted


_MODELS = {"stale": _inject_stale, "paired": _inject_paired}


def run_error_injection(
    engine: ChecksumEngine,
    *,
    region_size: int = 256,
    trials: int = 10_000,
    error_model: str = "stale",
    seed: int = 0,
) -> AccuracyResult:
    """Measure the engine's missed-error rate under an error model.

    Each trial builds a fresh region of random values, corrupts a copy,
    and counts a miss when the corrupted data checksums to the same
    value as the original (while actually differing).
    """
    if error_model not in _MODELS:
        raise ConfigError(
            f"unknown error model {error_model!r}; choose from {sorted(_MODELS)}"
        )
    inject = _MODELS[error_model]
    rng = random.Random(seed)
    result = AccuracyResult(
        engine=engine.name, error_model=error_model, trials=trials, missed=0
    )
    for _ in range(trials):
        values = [float(rng.randint(0, 1 << 40)) for _ in range(region_size)]
        reference = engine.of_values(values)
        corrupted = inject(values, rng)
        if corrupted == values:
            result.degenerate += 1
            continue
        if engine.of_values(corrupted) == reference:
            result.missed += 1
            if len(result.examples) < 4:
                result.examples.append((tuple(values), tuple(corrupted)))
    return result
