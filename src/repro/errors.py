"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single except clause while
letting programming errors (TypeError, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A machine or experiment configuration is invalid."""


class AddressError(ReproError):
    """An address is out of range, unaligned, or unallocated."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class CrashInjected(ReproError):
    """Raised internally to unwind the simulation at a crash point.

    User code never sees this; :mod:`repro.sim.crash` catches it and
    returns the post-crash machine state.
    """


class RecoveryError(ReproError):
    """Recovery could not restore a consistent persistent state."""


class WorkloadError(ReproError):
    """A workload was mis-parameterised or produced inconsistent output."""
