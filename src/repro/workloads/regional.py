"""Region-declared workloads: register once, inherit every scheme.

A :class:`RegionWorkload` subclass describes its durable work as
per-thread *plans* of :class:`~repro.schemes.RegionDecl` — each region
a static (address, value) write-set precomputed from the seeded spec —
plus a *region body* generator emitting the realistic traffic (probe
loads, computes, tracked stores).  The persistency-scheme layer
(:mod:`repro.schemes`) then supplies, for free:

* every registered scheme's forward protocol (``threads(variant)``),
* a generic per-scheme crash recovery (``recovery_threads_for``) that
  blindly redoes declared writes from the scheme's restart frontier,
* uniform scheme metadata allocation (checksum table, markers, WAL
  logs, write-behind journals) across create/rebind.

Contrast with the five hand-rolled kernels (tmm, cholesky, ...): those
interleave their persist protocols with kernel-specific loop structure
and keep their native implementations — this base class is the path
for new workloads, starting with the persistent-storage family
(:mod:`repro.workloads.storage`).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import List

from repro.schemes import (
    SCHEME_BASE,
    SCHEME_EP,
    SCHEME_LP,
    SCHEME_WAL,
    SCHEME_WB_NOJOURNAL,
    SCHEME_WRITE_BEHIND,
    RegionContext,
    RegionDecl,
    SchemeState,
    get_scheme,
    validate_plans,
)
from repro.sim.machine import Machine, ThreadGen
from repro.workloads.base import BoundWorkload, Workload


class RegionWorkload(Workload):
    """Workload factory for the region-declared protocol."""

    variants = (
        SCHEME_BASE,
        SCHEME_LP,
        SCHEME_EP,
        SCHEME_WAL,
        SCHEME_WRITE_BEHIND,
    )
    broken_variants = (SCHEME_WB_NOJOURNAL,)
    #: Region bodies may be value-dependent (hashmap probe loops), so
    #: region workloads stay off the pre-decoded op-stream cache.
    stream_safe = False
    #: Regions per write-behind batch (subclasses expose it as a
    #: constructor parameter).
    wb_batch: int = 4


class BoundRegionWorkload(BoundWorkload):
    """A region workload bound to one machine.

    Subclasses implement :meth:`_bind_data` (allocate or re-attach
    data regions), :meth:`plan` (the per-thread region declarations),
    :meth:`region_body` (the timed ops of one region, routing durable
    stores through the :class:`~repro.schemes.RegionContext`), and the
    usual ``reference``/``output`` verification pair.
    """

    def __init__(self, spec, machine: Machine, num_threads, engine, create):
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        self._bind_data(create)
        self.plans: List[List[RegionDecl]] = [
            self.plan(tid) for tid in range(num_threads)
        ]
        validate_plans(spec.name, self.plans)
        self.scheme_state = SchemeState(
            machine,
            spec.name,
            num_threads,
            self.plans,
            engine=engine,
            wb_batch=spec.wb_batch,
            create=create,
        )

    # -- subclass protocol ---------------------------------------------------

    @abstractmethod
    def _bind_data(self, create: bool) -> None:
        """Allocate (create) or re-attach (rebind) the data regions."""

    @abstractmethod
    def plan(self, tid: int) -> List[RegionDecl]:
        """Thread ``tid``'s region declarations, in execution order."""

    @abstractmethod
    def region_body(
        self, tid: int, decl: RegionDecl, ctx: RegionContext
    ) -> ThreadGen:
        """Timed ops of one region.  Durable stores must go through
        ``yield from ctx.store(addr, value)`` and must match
        ``decl.writes`` exactly; bodies must not read their own
        in-region writes (deferring schemes have not performed them)."""

    # -- scheme dispatch -----------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return get_scheme(variant).forward_threads(self)

    def recovery_threads(self) -> List[ThreadGen]:
        return get_scheme(SCHEME_LP).recovery_threads(self)

    def recovery_threads_for(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return get_scheme(variant).recovery_threads(self)
