"""Tiled matrix multiplication (paper sections II-B, IV; Figures 3, 4, 8, 9).

The 6-loop tiling of Figure 4 with the paper's variant set (Table IV):

* ``base`` — no failure safety;
* ``lp``   — Lazy Persistency (Figure 8): one checksum per LP region,
  committed lazily;
* ``ep``   — EagerRecompute: persist each tile-row stride with
  clflushopt as computation goes, fence + durable progress marker per
  tile ("a transaction covers a single tile");
* ``wal``  — one durable write-ahead-logged transaction per region
  (Figure 2's sequence via :class:`repro.core.wal.WriteAheadLog`).

Beyond the defaults, this module implements the paper's secondary
design space:

* **Region granularity** (section III-C / IV): ``granularity`` may be
  ``"jj"`` (one region per (kk, ii, jj) tile — smallest, most checksum
  commits), ``"ii"`` (the paper's choice: one region per (kk, ii)
  row-block), or ``"kk"`` (one region per thread per kk pass —
  cheapest checksums, most lost work on a crash).
* **Repair optimization** (section IV): ``repair="incremental"``
  searches for an earlier kk whose checksum still matches the damaged
  block and recomputes only the difference, instead of from scratch.
* **Checksum organization** (Figure 7): ``checksum_org="embedded"``
  stores each region's checksum in extra columns appended to the c
  matrix (Figure 7a) instead of the standalone collision-free table
  (Figure 7b, the paper's choice).

Work is partitioned by row-block: thread ``t`` owns the ii tiles with
``ii_tile % num_threads == t``, so no two threads ever write the same
c element and checksum slots are thread-private (section IV).

Recovery implements Figure 9 generalised to threads: every recovery
thread scans checksums in reverse kk order for its restart frontier,
repairs its own inconsistent row-blocks from the pristine inputs
(Eager), and resumes normal execution after the frontier.  Repair +
resume is correct for *any* frontier choice — the frontier only bounds
how much work is redone — which is what makes the paper's relaxed
associativity argument (section IV) sound.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.isa import Compute, Fence, Flush, Load, Op, RegionMark, Store
from repro.sim.machine import Machine, ThreadGen
from repro.core.eager import persist_addrs, persist_region
from repro.core.hashtable import INVALID_CHECKSUM
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.core.wal import WriteAheadLog
from repro.workloads.arrays import PMatrix
from repro.schemes import (
    SCHEME_BASE as VARIANT_BASE,
    SCHEME_EP as VARIANT_EP,
    SCHEME_EP_NOFENCE,
    SCHEME_LP as VARIANT_LP,
    SCHEME_WAL as VARIANT_WAL,
)
from repro.workloads.base import (
    BoundWorkload,
    Workload,
    integer_matrix,
)
from repro.workloads.registry import register

GRANULARITIES = ("jj", "ii", "kk")
REPAIR_MODES = ("scratch", "incremental")
CHECKSUM_ORGS = ("table", "embedded")

#: Fault-injection variant: EagerRecompute with the data fence before
#: the progress-marker commit removed.  The marker's own flush can then
#: persist ahead of the tile's data flushes, so an image exists where
#: the marker claims a tile that is not durable — marker-trusting
#: recovery produces wrong output on it.  The crash checker must find
#: and minimize exactly that image (the plain single-image crash path
#: cannot: the simulated schedule persists data and marker together).
#: The name (like every variant name) comes from the scheme registry;
#: the implementation is native to this kernel.
VARIANT_EP_NOFENCE = SCHEME_EP_NOFENCE


@register
class TiledMatMul(Workload):
    """c = a @ b with bsize x bsize tiles (Figure 4)."""

    name = "tmm"
    variants = (VARIANT_BASE, VARIANT_LP, VARIANT_EP, VARIANT_WAL)
    broken_variants = (VARIANT_EP_NOFENCE,)

    def __init__(
        self,
        n: int = 96,
        bsize: int = 8,
        seed: int = 7,
        kk_tiles: Optional[int] = None,
        granularity: str = "ii",
        repair: str = "scratch",
        checksum_org: str = "table",
        eager_checksum: bool = False,
    ) -> None:
        if n % bsize != 0:
            raise WorkloadError(f"n={n} not divisible by bsize={bsize}")
        if granularity not in GRANULARITIES:
            raise WorkloadError(
                f"granularity {granularity!r} not in {GRANULARITIES}"
            )
        if repair not in REPAIR_MODES:
            raise WorkloadError(f"repair {repair!r} not in {REPAIR_MODES}")
        if checksum_org not in CHECKSUM_ORGS:
            raise WorkloadError(
                f"checksum_org {checksum_org!r} not in {CHECKSUM_ORGS}"
            )
        if checksum_org == "embedded" and granularity != "ii":
            raise WorkloadError(
                "the embedded organization (Fig 7a) is defined for the "
                "paper's ii-granularity regions"
            )
        self.n = n
        self.bsize = bsize
        self.seed = seed
        self.tiles = n // bsize
        self.granularity = granularity
        self.repair = repair
        self.checksum_org = checksum_org
        #: Section III-D's alternative: persist each checksum eagerly
        #: (flush + fence at every commit).  Removes the Figure 6 "R3"
        #: false negative at the cost of paying Eager Persistency for
        #: the checksum itself; the paper chooses lazy (False).
        self.eager_checksum = eager_checksum
        #: Simulation window: number of kk tiles to execute (the paper
        #: simulates 2 of 64 for its timing runs).  None = all.
        self.kk_tiles = self.tiles if kk_tiles is None else kk_tiles
        if not 1 <= self.kk_tiles <= self.tiles:
            raise WorkloadError(f"kk_tiles={kk_tiles} out of range")

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundTMM":
        return BoundTMM(self, machine, num_threads, engine, create)


class BoundTMM(BoundWorkload):
    """A TMM instance bound to one machine."""

    def __init__(
        self,
        spec: TiledMatMul,
        machine: Machine,
        num_threads: int,
        engine: str,
        create: bool,
    ) -> None:
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        n, b, T = spec.n, spec.bsize, spec.tiles
        self.a = PMatrix(machine, "tmm.a", n, n, create=create)
        self.b = PMatrix(machine, "tmm.b", n, n, create=create)
        # Figure 7a: the embedded organization widens c by one checksum
        # column per kk tile; slot (kkt, iit) lives at row ii, col n+kkt.
        extra_cols = T if spec.checksum_org == "embedded" else 0
        self.c = PMatrix(machine, "tmm.c", n, n + extra_cols, create=create)
        if spec.checksum_org == "embedded":
            table_dims = (1,)  # engine holder only; slots live in c
        elif spec.granularity == "jj":
            table_dims = (T, T, T)
        elif spec.granularity == "ii":
            table_dims = (T, T, num_threads)
        else:  # "kk"
            table_dims = (T, num_threads)
        self.lp = LPRuntime(
            machine, "tmm.cktab", dims=table_dims, engine=engine, create=create
        )
        # EagerRecompute per-thread progress markers.
        self.markers = [
            machine.scalar(f"tmm.progress.{t}", -1.0)
            if create
            else machine.region(f"tmm.progress.{t}")
            for t in range(num_threads)
        ]
        # WAL logs, one per thread, sized for one region's writes plus
        # the progress marker committed inside the same transaction.
        self.logs = [
            WriteAheadLog(
                machine, f"tmm.log.{t}", capacity=b * n + 1, create=create
            )
            for t in range(num_threads)
        ]
        if create:
            rng = random.Random(spec.seed)
            self.a.fill(integer_matrix(rng, n, n))
            self.b.fill(integer_matrix(rng, n, n))
            if extra_cols:
                # checksum columns start durably invalid (section IV's
                # "initialize each checksum to an invalid value")
                full = np.zeros((n, n + extra_cols))
                full[:, n:] = INVALID_CHECKSUM
                self.c.fill(full)

    # ------------------------------------------------------------------
    # work partition
    # ------------------------------------------------------------------

    def my_ii_tiles(self, tid: int) -> List[int]:
        """Row-block (ii) tiles owned by thread ``tid``."""
        return [t for t in range(self.spec.tiles) if t % self.num_threads == tid]

    def owner_of(self, ii_tile: int) -> int:
        """Owning thread of an ii tile."""
        return ii_tile % self.num_threads

    # ------------------------------------------------------------------
    # checksum slot plumbing (standalone table vs embedded columns)
    # ------------------------------------------------------------------

    def _slot_addr(
        self, kkt: int, iit: int, jjt: Optional[int], tid: int
    ) -> int:
        spec = self.spec
        if spec.checksum_org == "embedded":
            return self.c.addr(iit * spec.bsize, spec.n + kkt)
        if spec.granularity == "jj":
            assert jjt is not None
            return self.lp.table.slot_addr(kkt, iit, jjt)
        if spec.granularity == "ii":
            return self.lp.table.slot_addr(kkt, iit, tid)
        return self.lp.table.slot_addr(kkt, tid)

    def _slot_committed(
        self, kkt: int, iit: int, jjt: Optional[int], tid: int
    ) -> bool:
        addr = self._slot_addr(kkt, iit, jjt, tid)
        return (
            self.machine.mem.persisted(addr, INVALID_CHECKSUM)
            != INVALID_CHECKSUM
        )

    def _commit_slot(
        self, ck: RegionChecksum, kkt: int, iit: int, jjt: Optional[int],
        tid: int, eager: bool,
    ) -> Generator[Op, Optional[float], None]:
        addr = self._slot_addr(kkt, iit, jjt, tid)
        yield Compute(1)  # slot-index computation
        yield Store(addr, float(ck.value))
        if eager:
            yield Flush(addr)
            yield Fence()

    def _read_slot(
        self, kkt: int, iit: int, jjt: Optional[int], tid: int
    ) -> Generator[Op, Optional[float], float]:
        value = yield Load(self._slot_addr(kkt, iit, jjt, tid))
        return value  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # normal execution
    # ------------------------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return [
            self._worker(variant, tid, start_kk_tile=0)
            for tid in range(self.num_threads)
        ]

    def _worker(
        self, variant: str, tid: int, start_kk_tile: int
    ) -> ThreadGen:
        lp_kk = variant == VARIANT_LP and self.spec.granularity == "kk"
        for kkt in range(start_kk_tile, self.spec.kk_tiles):
            yield from self.tag(f"kk{kkt}")
            outer_ck = self.lp.begin_region() if lp_kk else None
            for iit in self.my_ii_tiles(tid):
                yield from self.tag(f"ii{iit}")
                yield RegionMark(f"tmm:{variant}:kk{kkt}:ii{iit}")
                yield from self._region(variant, tid, kkt, iit, outer_ck)
                yield from self.tag()
            if lp_kk:
                assert outer_ck is not None
                yield from self._commit_slot(
                    outer_ck, kkt, 0, None, tid,
                    eager=self.spec.eager_checksum,
                )
            yield from self.tag()

    def _region(
        self,
        variant: str,
        tid: int,
        kkt: int,
        iit: int,
        outer_ck: Optional[RegionChecksum],
    ) -> Generator[Op, Optional[float], None]:
        """One ii iteration (the Figure 8 loop body)."""
        spec = self.spec
        n, b, T = spec.n, spec.bsize, spec.tiles
        kk, ii = kkt * b, iit * b
        gran = spec.granularity
        if variant in (VARIANT_EP, VARIANT_EP_NOFENCE):
            for jjt in range(T):
                yield from self._ep_tile(variant, tid, kkt, iit, jjt)
            return
        ck: Optional[RegionChecksum] = None
        wal_writes: List[tuple] = []
        if variant == VARIANT_LP:
            if gran == "kk":
                ck = outer_ck
            elif gran == "ii":
                ck = self.lp.begin_region()  # ResetCheckSum()

        a_addr, b_addr, c_addr = self.a.addr, self.b.addr, self.c.addr
        for jjt in range(T):
            jj = jjt * b
            if variant == VARIANT_LP and gran == "jj":
                ck = self.lp.begin_region()
            for i in range(ii, ii + b):
                for j in range(jj, jj + b):
                    s = yield Load(c_addr(i, j))
                    for k in range(kk, kk + b):
                        av = yield Load(a_addr(i, k))
                        bv = yield Load(b_addr(k, j))
                        s += av * bv
                    yield Compute(2 * b)  # the k-loop multiply-adds
                    if variant == VARIANT_WAL:
                        wal_writes.append((c_addr(i, j), s))
                    else:
                        yield Store(c_addr(i, j), s)
                    if ck is not None:
                        yield from ck.update(s)  # UpdateCheckSum(c[i][j])
            if variant == VARIANT_LP and gran == "jj":
                assert ck is not None
                yield from self._commit_slot(
                    ck, kkt, iit, jjt, tid,
                    eager=self.spec.eager_checksum,
                )

        if variant == VARIANT_LP and gran == "ii":
            assert ck is not None
            yield from self._commit_slot(
                ck, kkt, iit, None, tid, eager=self.spec.eager_checksum
            )
        elif variant == VARIANT_WAL:
            # The progress marker commits inside the transaction so a
            # rollback restores it together with the data it describes.
            wal_writes.append(
                (self.markers[tid].base, float(kkt * T + iit))
            )
            yield from self.logs[tid].transaction(wal_writes)

    def _ep_tile(
        self, variant: str, tid: int, kkt: int, iit: int, jjt: int
    ) -> Generator[Op, Optional[float], None]:
        """One EagerRecompute tile: compute + flush the rows, fence the
        data, then durably bump the progress marker ("a transaction
        covers a single tile").  The ``ep_nofence`` fault drops the data
        fence, letting the marker's flush race ahead of the data's."""
        spec = self.spec
        b, T = spec.bsize, spec.tiles
        kk, ii, jj = kkt * b, iit * b, jjt * b
        # Loads/stores are yielded directly (not via the PMatrix
        # generator helpers): the innermost loop runs for every image
        # of every crash-state check, and one sub-generator frame per
        # element access is the difference between the campaign being
        # interactive or not.  The op stream is identical either way.
        a_addr, b_addr, c_addr = self.a.addr, self.b.addr, self.c.addr
        for i in range(ii, ii + b):
            for j in range(jj, jj + b):
                s = yield Load(c_addr(i, j))
                for k in range(kk, kk + b):
                    av = yield Load(a_addr(i, k))
                    bv = yield Load(b_addr(k, j))
                    s += av * bv
                yield Compute(2 * b)  # the k-loop multiply-adds
                yield Store(c_addr(i, j), s)
            # EagerRecompute: persist the finished row stride
            # (bsize elements = one clflushopt per covered line).
            yield from persist_addrs(self.c.row_addrs(i, jj, jj + b))
        if variant == VARIANT_EP:
            # wait for the tile's flushes before claiming progress
            yield Fence()
        marker = self.markers[tid]
        yield Store(marker.base, float(self._tile_seq(kkt, iit, jjt)))
        yield Flush(marker.base)
        yield Fence()

    # ------------------------------------------------------------------
    # progress-marker encoding (EP and WAL recovery)
    # ------------------------------------------------------------------

    def _tile_seq(self, kkt: int, iit: int, jjt: int) -> int:
        """Marker encoding of an EP tile; strictly increasing along any
        one thread's (kkt, iit, jjt) traversal order."""
        T = self.spec.tiles
        return (kkt * T + iit) * T + jjt

    def _ep_tile_order(self, tid: int) -> List[tuple]:
        """All of ``tid``'s EP tiles, in execution order."""
        T = self.spec.tiles
        return [
            (kkt, iit, jjt)
            for kkt in range(self.spec.kk_tiles)
            for iit in self.my_ii_tiles(tid)
            for jjt in range(T)
        ]

    def _wal_region_order(self, tid: int) -> List[tuple]:
        """All of ``tid``'s WAL regions (kkt, iit), in execution order;
        the marker for region (kkt, iit) is ``kkt * tiles + iit``."""
        return [
            (kkt, iit)
            for kkt in range(self.spec.kk_tiles)
            for iit in self.my_ii_tiles(tid)
        ]

    # ------------------------------------------------------------------
    # recovery (Figure 9)
    # ------------------------------------------------------------------

    def recovery_threads(self) -> List[ThreadGen]:
        return [self._recover(tid) for tid in range(self.num_threads)]

    def recovery_threads_for(self, variant: str) -> List[ThreadGen]:
        if variant in (VARIANT_EP, VARIANT_EP_NOFENCE):
            return [self._recover_ep(tid) for tid in range(self.num_threads)]
        if variant == VARIANT_WAL:
            return [self._recover_wal(tid) for tid in range(self.num_threads)]
        # lp (and base, which has no recovery story of its own) uses the
        # checksum scan: it rebuilds from any reachable image.
        return self.recovery_threads()

    def _recover_ep(self, tid: int) -> ThreadGen:
        """Marker-trusting EagerRecompute recovery.

        Tiles at or before the durable marker are trusted — the data
        fence preceding the marker commit made them durable first.
        Every later tile is recomputed from the pristine inputs to its
        last marked state (its c values may be a partial mix from the
        interrupted pass), then execution resumes after the marker.
        Sound for ``ep``; deliberately unsound for ``ep_nofence``,
        whose missing data fence lets the marker outrun the data.
        """
        yield RegionMark(f"tmm:recover-ep:t{tid}")
        raw = yield Load(self.markers[tid].base)
        done = int(raw) if raw is not None else -1
        order = self._ep_tile_order(tid)
        done_pos = sum(
            1 for t in order if self._tile_seq(*t) <= done
        )
        # Repair: recompute each unmarked (iit, jjt) tile once, from
        # a/b alone, up to its last marked kk pass.
        todo: List[tuple] = []
        for _, iit, jjt in order[done_pos:]:
            if (iit, jjt) not in todo:
                todo.append((iit, jjt))
        for iit, jjt in todo:
            last = max(
                (
                    kkt
                    for kkt, i2, j2 in order[:done_pos]
                    if i2 == iit and j2 == jjt
                ),
                default=None,
            )
            yield RegionMark(f"tmm:recover-ep:t{tid}:repair:ii{iit}:jj{jjt}")
            yield from self._ep_repair_tile(iit, jjt, last)
        # Resume EagerRecompute (with its fences) after the marker.
        for kkt, iit, jjt in order[done_pos:]:
            yield from self._ep_tile(VARIANT_EP, tid, kkt, iit, jjt)

    def _ep_repair_tile(
        self, iit: int, jjt: int, last_kkt: Optional[int]
    ) -> Generator[Op, Optional[float], None]:
        """Restore one tile to its state after kk pass ``last_kkt``
        (zero if None) without reading c; persist eagerly."""
        b = self.spec.bsize
        ii, jj = iit * b, jjt * b
        k_hi = 0 if last_kkt is None else (last_kkt + 1) * b
        a_addr, b_addr, c_addr = self.a.addr, self.b.addr, self.c.addr
        for i in range(ii, ii + b):
            for j in range(jj, jj + b):
                s = 0.0
                for k in range(k_hi):
                    av = yield Load(a_addr(i, k))
                    bv = yield Load(b_addr(k, j))
                    s += av * bv
                if k_hi:
                    yield Compute(2 * k_hi)
                yield Store(c_addr(i, j), s)
            yield from persist_addrs(self.c.row_addrs(i, jj, jj + b))
        yield Fence()

    def _recover_wal(self, tid: int) -> ThreadGen:
        """WAL recovery: roll back the interrupted transaction — which
        restores the in-transaction progress marker together with the
        data it describes — then resume from the region after the
        marker."""
        yield RegionMark(f"tmm:recover-wal:t{tid}")
        yield from self.logs[tid].recovery_ops()
        raw = yield Load(self.markers[tid].base)
        done = int(raw) if raw is not None else -1
        T = self.spec.tiles
        for kkt, iit in self._wal_region_order(tid):
            if kkt * T + iit <= done:
                continue
            yield RegionMark(f"tmm:wal:resume:kk{kkt}:ii{iit}")
            yield from self._region(VARIANT_WAL, tid, kkt, iit, None)

    def _recover(self, tid: int) -> ThreadGen:
        """Reverse-scan, repair own blocks, resume normal execution."""
        yield RegionMark(f"tmm:recover:t{tid}:scan")

        # 1. reverse scan over kk for the restart frontier (Figure 9
        #    lines 1-15).  Timed: post-crash arch state == NVMM image.
        frontier: Optional[int] = None
        for kkt in reversed(range(self.spec.kk_tiles)):
            found = yield from self._any_region_matches(kkt)
            if found:
                frontier = kkt
                break

        # 2. repair this thread's inconsistent row-blocks at the frontier.
        for iit in self.my_ii_tiles(tid):
            if frontier is not None:
                ok = yield from self._block_consistent_at(frontier, iit)
                if ok:
                    continue
            yield RegionMark(f"tmm:recover:t{tid}:repair:ii{iit}")
            yield from self._repair_block(tid, iit, frontier)
        if frontier is not None and self.spec.granularity == "kk":
            # the per-thread kk checksum covers all of this thread's
            # blocks; re-commit it over the (now consistent) pass
            yield from self._recommit_kk_checksum(tid, frontier)

        # 3. resume normal (Lazy) execution after the frontier.
        resume_from = 0 if frontier is None else frontier + 1
        yield from self._worker(VARIANT_LP, tid, start_kk_tile=resume_from)

    # -- consistency probes, per granularity --------------------------------

    def _any_region_matches(
        self, kkt: int
    ) -> Generator[Op, Optional[float], bool]:
        spec = self.spec
        if spec.granularity == "jj":
            for iit in range(spec.tiles):
                for jjt in range(spec.tiles):
                    ok = yield from self._tile_matches(kkt, iit, jjt)
                    if ok:
                        return True
            return False
        if spec.granularity == "kk":
            for t in range(self.num_threads):
                ok = yield from self._kk_pass_matches(kkt, t)
                if ok:
                    return True
            return False
        for iit in range(spec.tiles):
            ok = yield from self._block_matches(kkt, iit)
            if ok:
                return True
        return False

    def _block_consistent_at(
        self, kkt: int, iit: int
    ) -> Generator[Op, Optional[float], bool]:
        """Is this whole row-block exactly at state kkt?"""
        spec = self.spec
        if spec.granularity == "jj":
            for jjt in range(spec.tiles):
                ok = yield from self._tile_matches(kkt, iit, jjt)
                if not ok:
                    return False
            return True
        if spec.granularity == "kk":
            return (
                yield from self._kk_pass_matches(kkt, self.owner_of(iit))
            )
        return (yield from self._block_matches(kkt, iit))

    def _block_matches(
        self, kkt: int, iit: int
    ) -> Generator[Op, Optional[float], bool]:
        """IsMatchingChecksum(ii, kk) for ii-granularity regions."""
        tid = self.owner_of(iit)
        if not self._slot_committed(kkt, iit, None, tid):
            return False
        ck = RegionChecksum(self.lp.engine)
        for i, j in self._region_value_order(iit):
            v = yield from self.c.read(i, j)
            ck.update_silent(v)
            yield Compute(self.lp.engine.flops_per_update)
        stored = yield from self._read_slot(kkt, iit, None, tid)
        return float(ck.value) == stored

    def _tile_matches(
        self, kkt: int, iit: int, jjt: int
    ) -> Generator[Op, Optional[float], bool]:
        tid = self.owner_of(iit)
        if not self._slot_committed(kkt, iit, jjt, tid):
            return False
        b = self.spec.bsize
        ck = RegionChecksum(self.lp.engine)
        for i in range(iit * b, iit * b + b):
            for j in range(jjt * b, jjt * b + b):
                v = yield from self.c.read(i, j)
                ck.update_silent(v)
                yield Compute(self.lp.engine.flops_per_update)
        stored = yield from self._read_slot(kkt, iit, jjt, tid)
        return float(ck.value) == stored

    def _kk_pass_matches(
        self, kkt: int, tid: int
    ) -> Generator[Op, Optional[float], bool]:
        if not self._slot_committed(kkt, 0, None, tid):
            return False
        ck = RegionChecksum(self.lp.engine)
        for iit in self.my_ii_tiles(tid):
            for i, j in self._region_value_order(iit):
                v = yield from self.c.read(i, j)
                ck.update_silent(v)
                yield Compute(self.lp.engine.flops_per_update)
        stored = yield from self._read_slot(kkt, 0, None, tid)
        return float(ck.value) == stored

    def _region_value_order(self, iit: int):
        """(i, j) pairs in the exact order region (kk, iit) updates its
        checksum: jj tiles outermost, then i rows, then j (Figure 8)."""
        b, T = self.spec.bsize, self.spec.tiles
        ii = iit * b
        for jjt in range(T):
            jj = jjt * b
            for i in range(ii, ii + b):
                for j in range(jj, jj + b):
                    yield i, j

    # -- repair ---------------------------------------------------------------

    def _repair_block(
        self, tid: int, iit: int, frontier: Optional[int]
    ) -> Generator[Op, Optional[float], None]:
        """Repair(ii, kk): bring a row-block to its state after the
        frontier kk, with Eager Persistency (forward progress)."""
        spec = self.spec
        n, b = spec.n, spec.bsize
        ii = iit * b
        k_hi = 0 if frontier is None else (frontier + 1) * b

        # Section IV's optimization: find an earlier kk whose checksum
        # still matches this block and recompute only the difference.
        base_kkt: Optional[int] = None
        if (
            spec.repair == "incremental"
            and spec.granularity == "ii"
            and frontier is not None
        ):
            for kkt in reversed(range(frontier)):
                ok = yield from self._block_matches(kkt, iit)
                if ok:
                    base_kkt = kkt
                    break
        k_lo = 0 if base_kkt is None else (base_kkt + 1) * b

        new_values = {}
        for i in range(ii, ii + b):
            for j in range(n):
                if base_kkt is None:
                    s = 0.0
                else:
                    s = yield from self.c.read(i, j)
                for k in range(k_lo, k_hi):
                    av = yield from self.a.read(i, k)
                    bv = yield from self.b.read(k, j)
                    s += av * bv
                if k_hi > k_lo:
                    yield Compute(2 * (k_hi - k_lo))
                yield from self.c.write(i, j, s)
                new_values[(i, j)] = s
        # persist the repaired block eagerly (forward progress)
        yield from persist_region(
            [self.c.addr(i, j) for i in range(ii, ii + b) for j in range(n)]
        )
        if frontier is None:
            return
        # re-commit the frontier checksum(s) eagerly so a crash during
        # the remaining recovery finds this block consistent.
        if spec.granularity == "jj":
            for jjt in range(spec.tiles):
                ck = RegionChecksum(self.lp.engine)
                for i in range(ii, ii + b):
                    for j in range(jjt * b, jjt * b + b):
                        ck.update_silent(new_values[(i, j)])
                        yield Compute(self.lp.engine.flops_per_update)
                yield from self._commit_slot(
                    ck, frontier, iit, jjt, tid, eager=True
                )
        elif spec.granularity == "ii":
            ck = RegionChecksum(self.lp.engine)
            for i, j in self._region_value_order(iit):
                ck.update_silent(new_values[(i, j)])
                yield Compute(self.lp.engine.flops_per_update)
            yield from self._commit_slot(ck, frontier, iit, None, tid, eager=True)
        # "kk" granularity recommits once per thread in _recover.

    def _recommit_kk_checksum(self, tid: int, frontier: int) -> ThreadGen:
        ck = RegionChecksum(self.lp.engine)
        for iit in self.my_ii_tiles(tid):
            for i, j in self._region_value_order(iit):
                v = yield from self.c.read(i, j)
                ck.update_silent(v)
                yield Compute(self.lp.engine.flops_per_update)
        yield from self._commit_slot(ck, frontier, 0, None, tid, eager=True)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        a = self.a.to_numpy()
        bmat = self.b.to_numpy()
        k_hi = self.spec.kk_tiles * self.spec.bsize
        return a[:, :k_hi] @ bmat[:k_hi, :]

    def output(self, persistent: bool = False) -> np.ndarray:
        full = self.c.to_numpy(persistent=persistent)
        return full[:, : self.spec.n]

    @property
    def checksum_space_bytes(self) -> int:
        """Footprint of the checksum metadata (Figure 7 comparison)."""
        if self.spec.checksum_org == "embedded":
            return self.spec.n * self.spec.tiles * 8
        return self.lp.space_overhead_bytes
