"""Fast Fourier Transform (Table V: "100k nodes vector FFT").

Radix-2 **Stockham autosort** FFT over a complex vector, double-
buffered: stage ``s`` reads buffer ``s % 2`` and writes buffer
``(s+1) % 2``, so no in-place bit-reversal is needed and every stage's
output is a complete, freshly written buffer — ideal LP-region
structure.  Values are stored interleaved (re at ``2i``, im at
``2i+1``).

* LP region: (stage, thread) — each thread checksums every value it
  writes during a stage; a Barrier separates stages.
* Recovery: scan stages from last to first for the highest stage whose
  regions **all** match (that buffer then holds exactly that stage's
  output); resume after it.  If no stage survives — the ping-pong
  means a partially-run stage ``s+2`` may have corrupted stage ``s``'s
  buffer — restore buffer 0 from the pristine input and replay from
  stage 0.  Either way recovery is sound under repeated crashes.
"""

from __future__ import annotations

import cmath
import random
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.sim.isa import Barrier, Compute, Fence, Flush, Load, Op, RegionMark, Store
from repro.sim.machine import Machine, ThreadGen
from repro.core.eager import persist_region, writeback_addrs
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.workloads.arrays import PArray
from repro.schemes import (
    SCHEME_BASE as VARIANT_BASE,
    SCHEME_EP as VARIANT_EP,
    SCHEME_LP as VARIANT_LP,
)
from repro.workloads.base import (
    BoundWorkload,
    Workload,
)
from repro.workloads.registry import register


@register
class FFT(Workload):
    """X = FFT(x) by radix-2 Stockham, double-buffered."""

    name = "fft"
    variants = (VARIANT_BASE, VARIANT_LP, VARIANT_EP)

    def __init__(self, n: int = 256, seed: int = 23) -> None:
        if n < 2 or n & (n - 1):
            raise WorkloadError(f"FFT size {n} must be a power of two >= 2")
        self.n = n
        self.stages = n.bit_length() - 1
        self.seed = seed

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundFFT":
        return BoundFFT(self, machine, num_threads, engine, create)


class BoundFFT(BoundWorkload):
    def __init__(self, spec, machine, num_threads, engine, create):
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        n = spec.n
        self.pristine = PArray(machine, "fft.p", 2 * n, create=create)
        self.bufs = [
            PArray(machine, "fft.buf0", 2 * n, create=create),
            PArray(machine, "fft.buf1", 2 * n, create=create),
        ]
        self.lp = LPRuntime(
            machine,
            "fft.cktab",
            dims=(spec.stages, num_threads),
            engine=engine,
            create=create,
        )
        self.markers = [
            machine.scalar(f"fft.progress.{t}", -1.0)
            if create
            else machine.region(f"fft.progress.{t}")
            for t in range(num_threads)
        ]
        if create:
            rng = random.Random(spec.seed)
            data = [float(rng.randint(-8, 8)) for _ in range(2 * n)]
            self.pristine.fill(data)
            self.bufs[0].fill(data)

    # ------------------------------------------------------------------
    # stage geometry
    # ------------------------------------------------------------------

    def stage_params(self, stage: int) -> Tuple[int, int]:
        """(l, m) for a stage: l butterfly groups of span m."""
        groups = 1 << stage
        m = self.spec.n >> (stage + 1)
        return groups, m

    def my_butterflies(self, tid: int, stage: int) -> range:
        """Contiguous chunk of the n/2 butterfly indices owned by tid."""
        total = self.spec.n // 2
        per = total // self.num_threads
        extra = total % self.num_threads
        lo = tid * per + min(tid, extra)
        hi = lo + per + (1 if tid < extra else 0)
        return range(lo, hi)

    # ------------------------------------------------------------------
    # complex element access
    # ------------------------------------------------------------------

    def _read_c(
        self, buf: PArray, idx: int
    ) -> Generator[Op, Optional[float], complex]:
        re = yield from buf.read(2 * idx)
        im = yield from buf.read(2 * idx + 1)
        return complex(re, im)

    def _write_c(
        self, buf: PArray, idx: int, value: complex
    ) -> Generator[Op, Optional[float], None]:
        yield from buf.write(2 * idx, value.real)
        yield from buf.write(2 * idx + 1, value.imag)

    # ------------------------------------------------------------------
    # normal execution
    # ------------------------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return [
            self._worker(variant, tid, start_stage=0)
            for tid in range(self.num_threads)
        ]

    def _worker(self, variant: str, tid: int, start_stage: int) -> ThreadGen:
        for stage in range(start_stage, self.spec.stages):
            yield from self.tag(f"stage{stage}")
            yield RegionMark(f"fft:{variant}:s{stage}:t{tid}")
            yield from self._stage(variant, tid, stage)
            yield from self.tag()
            yield Barrier()

    def _stage(
        self, variant: str, tid: int, stage: int
    ) -> Generator[Op, Optional[float], None]:
        src = self.bufs[stage % 2]
        dst = self.bufs[(stage + 1) % 2]
        groups, m = self.stage_params(stage)
        ck: Optional[RegionChecksum] = None
        if variant == VARIANT_LP:
            ck = self.lp.begin_region()
        written: List[int] = []
        in_tile = 0

        for t in self.my_butterflies(tid, stage):
            p, q = t // m, t % m
            a = yield from self._read_c(src, q + m * (2 * p))
            b = yield from self._read_c(src, q + m * (2 * p + 1))
            w = cmath.exp(-2j * cmath.pi * p / (2 * groups))
            top = a + w * b
            bot = a - w * b
            yield Compute(10)  # twiddle multiply + two complex adds
            yield from self._write_c(dst, q + m * p, top)
            yield from self._write_c(dst, q + m * (p + groups), bot)
            if ck is not None:
                for v in (top.real, top.imag, bot.real, bot.imag):
                    yield from ck.update(v)
            if variant == VARIANT_EP:
                written.extend(
                    (
                        dst.addr(2 * (q + m * p)),
                        dst.addr(2 * (q + m * p) + 1),
                        dst.addr(2 * (q + m * (p + groups))),
                        dst.addr(2 * (q + m * (p + groups)) + 1),
                    )
                )
                in_tile += 1
                if in_tile >= self.EP_TILE:
                    # EagerRecompute: one transaction per tile — flush
                    # the tile's output, fence, bump the marker durably
                    yield from self._ep_tile_commit(tid, stage, written)
                    written = []
                    in_tile = 0

        if variant == VARIANT_LP:
            assert ck is not None
            yield from self.lp.commit(ck, stage, tid)
        elif variant == VARIANT_EP and written:
            yield from self._ep_tile_commit(tid, stage, written)

    #: butterflies per EagerRecompute transaction tile
    EP_TILE = 16

    def _ep_tile_commit(
        self, tid: int, stage: int, written: List[int]
    ) -> Generator[Op, Optional[float], None]:
        # clwb, not clflushopt: this stage's output is the next stage's
        # input (see core.eager.writeback_addrs)
        yield from writeback_addrs(written)
        yield Fence()
        marker = self.markers[tid]
        yield Store(marker.base, float(stage))
        yield Flush(marker.base)
        yield Fence()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recovery_threads(self) -> List[ThreadGen]:
        return [self._recover(tid) for tid in range(self.num_threads)]

    def recovery_threads_for(self, variant: str) -> List[ThreadGen]:
        # One conservative path for every variant: the checksum scan
        # finds the highest intact stage, and when nothing survives —
        # always the case for ep, which commits no checksums — buffer 0
        # is restored from the pristine input and the transform replays
        # from stage 0.  Sound on any reachable image.
        return self.recovery_threads()

    def _recover(self, tid: int) -> ThreadGen:
        yield RegionMark(f"fft:recover:t{tid}")
        # highest stage whose output buffer is fully consistent
        survivor: Optional[int] = None
        for stage in reversed(range(self.spec.stages)):
            all_match = True
            for t in range(self.num_threads):
                matches = yield from self._region_matches(stage, t)
                if not matches:
                    all_match = False
                    break
            if all_match:
                survivor = stage
                break

        if survivor is None and tid == 0:
            # restore buffer 0 from the pristine input, eagerly
            for i in range(2 * self.spec.n):
                v = yield from self.pristine.read(i)
                yield from self.bufs[0].write(i, v)
            yield from persist_region(list(self.bufs[0].region.element_addrs()))
        yield Barrier()

        resume_from = 0 if survivor is None else survivor + 1
        yield from self._worker(VARIANT_LP, tid, start_stage=resume_from)

    def _region_matches(
        self, stage: int, tid: int
    ) -> Generator[Op, Optional[float], bool]:
        if not self.lp.region_committed(stage, tid):
            return False
        dst = self.bufs[(stage + 1) % 2]
        groups, m = self.stage_params(stage)
        ck = RegionChecksum(self.lp.engine)
        for t in self.my_butterflies(tid, stage):
            p, q = t // m, t % m
            top = yield from self._read_c(dst, q + m * p)
            bot = yield from self._read_c(dst, q + m * (p + groups))
            for v in (top.real, top.imag, bot.real, bot.imag):
                ck.update_silent(v)
            yield Compute(4 * self.lp.engine.flops_per_update)
        stored = yield Load(self.lp.table.slot_addr(stage, tid))
        return float(ck.value) == stored

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def _replay(self) -> List[complex]:
        """Bit-exact reference: same arithmetic, same order, in Python."""
        n = self.spec.n
        flat = self.pristine.to_numpy()
        src = [complex(flat[2 * i], flat[2 * i + 1]) for i in range(n)]
        dst = [0j] * n
        for stage in range(self.spec.stages):
            groups, m = self.stage_params(stage)
            for t in range(n // 2):
                p, q = t // m, t % m
                a = src[q + m * (2 * p)]
                b = src[q + m * (2 * p + 1)]
                w = cmath.exp(-2j * cmath.pi * p / (2 * groups))
                dst[q + m * p] = a + w * b
                dst[q + m * (p + groups)] = a - w * b
            src, dst = dst, src
        return src

    def reference(self) -> np.ndarray:
        out = self._replay()
        flat = np.empty(2 * self.spec.n)
        for i, c in enumerate(out):
            flat[2 * i] = c.real
            flat[2 * i + 1] = c.imag
        return flat

    def output(self, persistent: bool = False) -> np.ndarray:
        final = self.bufs[self.spec.stages % 2]
        return final.to_numpy(persistent=persistent)

    def output_complex(self, persistent: bool = False) -> np.ndarray:
        """The transform as a complex numpy vector."""
        flat = self.output(persistent=persistent)
        return flat[0::2] + 1j * flat[1::2]
