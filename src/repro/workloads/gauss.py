"""Gaussian elimination (Table V: "4k-square input matrix gauss
elimination"; the paper simulates a 4-pivot window of the outer loop).

In-place LU-style elimination without pivoting on a diagonally dominant
matrix.  The working matrix ``A`` starts as a durable copy of a
**pristine** input ``P`` that is never written — the paper's recovery
strategy for in-place kernels recomputes "from the beginning ... using
the input matrices", and keeping the input pristine in NVMM is what
makes that possible once the original values have been overwritten.

* LP region: the updates one pivot ``k`` applies to one row block,
  keyed (k, block).  Blocks are owned by threads (block % P == tid),
  and a Barrier separates pivots because stage ``k`` reads pivot row
  ``k``, finalised in stage ``k-1``.
* Recovery: reverse-scan for the restart frontier ``f`` (the highest
  pivot at which any block's checksum matches its persisted data),
  then **replay** stages 0..f from the pristine input — elimination's
  read-modify-write structure means partially persisted factor columns
  cannot be trusted piecemeal, so the sound repair is a deterministic
  replay (DESIGN.md section 4) — persist eagerly, and resume Lazy
  execution at stage ``f+1``.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.isa import Barrier, Compute, Load, Op, RegionMark
from repro.sim.machine import Machine, ThreadGen
from repro.core.eager import persist_region
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.workloads.arrays import PMatrix
from repro.schemes import (
    SCHEME_BASE as VARIANT_BASE,
    SCHEME_EP as VARIANT_EP,
    SCHEME_LP as VARIANT_LP,
)
from repro.workloads.base import (
    BoundWorkload,
    Workload,
    integer_matrix,
)
from repro.workloads.registry import register
from repro.sim.isa import Fence, Flush, Store
from repro.core.eager import persist_addrs


@register
class GaussElimination(Workload):
    """In-place elimination: A becomes U above the diagonal, the
    multipliers (L factors) below it."""

    name = "gauss"
    variants = (VARIANT_BASE, VARIANT_LP, VARIANT_EP)

    def __init__(
        self,
        n: int = 48,
        row_block: int = 4,
        pivots: Optional[int] = None,
        seed: int = 13,
    ) -> None:
        if n % row_block != 0:
            raise WorkloadError(f"n={n} not divisible by row_block={row_block}")
        self.n = n
        self.row_block = row_block
        self.num_blocks = n // row_block
        #: Simulation window: number of pivot columns (the paper's
        #: simulation passes over 4 columns of a 4096-wide matrix).
        self.pivots = n - 1 if pivots is None else pivots
        if not 1 <= self.pivots <= n - 1:
            raise WorkloadError(f"pivots={pivots} out of range [1, {n - 1}]")
        self.seed = seed

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundGauss":
        return BoundGauss(self, machine, num_threads, engine, create)


class BoundGauss(BoundWorkload):
    def __init__(self, spec, machine, num_threads, engine, create):
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        n = spec.n
        self.pristine = PMatrix(machine, "gauss.p", n, n, create=create)
        self.a = PMatrix(machine, "gauss.a", n, n, create=create)
        self.lp = LPRuntime(
            machine,
            "gauss.cktab",
            dims=(spec.pivots, spec.num_blocks),
            engine=engine,
            create=create,
        )
        self.markers = [
            machine.scalar(f"gauss.progress.{t}", -1.0)
            if create
            else machine.region(f"gauss.progress.{t}")
            for t in range(num_threads)
        ]
        if create:
            rng = random.Random(spec.seed)
            mat = integer_matrix(rng, n, n)
            # diagonal dominance: no pivoting needed, pivots never zero
            mat += np.diag([float(8 * n)] * n)
            self.pristine.fill(mat)
            self.a.fill(mat)

    def my_blocks(self, tid: int) -> List[int]:
        """Row blocks owned by thread ``tid``."""
        return [
            b for b in range(self.spec.num_blocks) if b % self.num_threads == tid
        ]

    def block_rows(self, block: int, pivot: int) -> List[int]:
        """Rows of ``block`` that pivot ``pivot`` updates (i > pivot)."""
        r0 = block * self.spec.row_block
        return [
            i for i in range(r0, r0 + self.spec.row_block) if i > pivot
        ]

    # ------------------------------------------------------------------
    # normal execution
    # ------------------------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return [
            self._worker(variant, tid, start_pivot=0)
            for tid in range(self.num_threads)
        ]

    def _worker(self, variant: str, tid: int, start_pivot: int) -> ThreadGen:
        for k in range(start_pivot, self.spec.pivots):
            yield from self.tag(f"pivot{k}")
            for block in self.my_blocks(tid):
                rows = self.block_rows(block, k)
                if not rows:
                    continue
                yield from self.tag(f"block{block}")
                yield RegionMark(f"gauss:{variant}:k{k}:b{block}")
                yield from self._region(variant, tid, k, block, rows)
                yield from self.tag()
            yield from self.tag()
            # stage k+1 reads pivot row k+1, finalised in stage k
            yield Barrier()

    def _region(
        self, variant: str, tid: int, k: int, block: int, rows: List[int]
    ) -> Generator[Op, Optional[float], None]:
        n = self.spec.n
        ck: Optional[RegionChecksum] = None
        if variant == VARIANT_LP:
            ck = self.lp.begin_region()

        pivot = yield from self.a.read(k, k)
        for i in rows:
            aik = yield from self.a.read(i, k)
            factor = aik / pivot
            yield Compute(1)
            yield from self.a.write(i, k, factor)
            if ck is not None:
                yield from ck.update(factor)
            for j in range(k + 1, n):
                akj = yield from self.a.read(k, j)
                aij = yield from self.a.read(i, j)
                updated = aij - factor * akj
                yield from self.a.write(i, j, updated)
                if ck is not None:
                    yield from ck.update(updated)
            yield Compute(2 * (n - k - 1))
            if variant == VARIANT_EP:
                yield from persist_addrs(self.a.row_addrs(i, k, n))

        if variant == VARIANT_LP:
            assert ck is not None
            yield from self.lp.commit(ck, k, block)
        elif variant == VARIANT_EP:
            yield Fence()
            marker = self.markers[tid]
            yield Store(marker.base, float(k * self.spec.num_blocks + block))
            yield Flush(marker.base)
            yield Fence()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recovery_threads(self) -> List[ThreadGen]:
        return [self._recover(tid) for tid in range(self.num_threads)]

    def _recover(self, tid: int) -> ThreadGen:
        yield RegionMark(f"gauss:recover:t{tid}")
        frontier: Optional[int] = None
        for k in reversed(range(self.spec.pivots)):
            for block in range(self.spec.num_blocks):
                matches = yield from self._region_matches(k, block)
                if matches:
                    frontier = k
                    break
            if frontier is not None:
                break

        # thread 0 replays from the pristine input up to the frontier;
        # the others wait at the barrier.
        if tid == 0:
            yield from self._replay(frontier)
        yield Barrier()

        resume_from = 0 if frontier is None else frontier + 1
        yield from self._worker(VARIANT_LP, tid, start_pivot=resume_from)

    def _region_matches(
        self, k: int, block: int
    ) -> Generator[Op, Optional[float], bool]:
        rows = self.block_rows(block, k)
        if not rows or not self.lp.region_committed(k, block):
            return False
        n = self.spec.n
        ck = RegionChecksum(self.lp.engine)
        for i in rows:
            for j in range(k, n):
                v = yield from self.a.read(i, j)
                ck.update_silent(v)
            yield Compute((n - k) * self.lp.engine.flops_per_update)
        stored = yield Load(self.lp.table.slot_addr(k, block))
        return float(ck.value) == stored

    def _replay(self, frontier: Optional[int]) -> ThreadGen:
        """Restore A from the pristine input, apply stages 0..frontier,
        persist eagerly, and recommit the frontier checksums."""
        n = self.spec.n
        yield RegionMark(f"gauss:recover:replay:f{frontier}")

        # 1. restore A = P (elimination reads A in place, so stage 0
        #    must see the pristine values everywhere).
        for i in range(n):
            for j in range(n):
                v = yield from self.pristine.read(i, j)
                yield from self.a.write(i, j, v)

        # 2. replay stages 0..frontier with plain stores (arch state);
        #    checksums are recomputed for the frontier stage only.
        cks = {b: RegionChecksum(self.lp.engine) for b in range(self.spec.num_blocks)}
        for k in range(0 if frontier is None else frontier + 1):
            pivot = yield from self.a.read(k, k)
            for i in range(k + 1, n):
                block = i // self.spec.row_block
                aik = yield from self.a.read(i, k)
                factor = aik / pivot
                yield Compute(1)
                yield from self.a.write(i, k, factor)
                if k == frontier:
                    cks[block].update_silent(factor)
                for j in range(k + 1, n):
                    akj = yield from self.a.read(k, j)
                    aij = yield from self.a.read(i, j)
                    updated = aij - factor * akj
                    yield from self.a.write(i, j, updated)
                    if k == frontier:
                        cks[block].update_silent(updated)
                yield Compute(2 * (n - k - 1))

        # 3. persist the replayed matrix and the frontier checksums.
        yield from persist_region(list(self.a.region.element_addrs()))
        if frontier is not None:
            for block in range(self.spec.num_blocks):
                if self.block_rows(block, frontier):
                    yield from self.lp.table.commit_eager(
                        cks[block].value, frontier, block
                    )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        a = self.pristine.to_numpy().copy()
        n = self.spec.n
        for k in range(self.spec.pivots):
            pivot = a[k, k]
            for i in range(k + 1, n):
                factor = a[i, k] / pivot
                a[i, k] = factor
                # same per-element expression as the kernel
                a[i, k + 1 :] = a[i, k + 1 :] - factor * a[k, k + 1 :]
        return a

    def output(self, persistent: bool = False) -> np.ndarray:
        return self.a.to_numpy(persistent=persistent)
