"""Persistent array/matrix views over simulator regions.

Workload kernels access data exclusively through these helpers, which
emit :mod:`repro.sim.isa` ops — so every element access goes through
the simulated cache hierarchy.  Bulk (untimed) accessors exist for
initialisation, reference computation and verification only.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.sim.address import ELEMENT_BYTES, Region
from repro.sim.isa import Load, Op, Store
from repro.sim.machine import Machine


class PArray:
    """A 1-D persistent array of 64-bit values."""

    def __init__(self, machine: Machine, name: str, n: int, create: bool = True):
        self.machine = machine
        self.name = name
        self.n = n
        self.region: Region = (
            machine.alloc(name, n) if create else machine.region(name)
        )
        if self.region.num_elements != n:
            raise WorkloadError(
                f"region {name!r} holds {self.region.num_elements} elements, "
                f"expected {n}"
            )

    # -- timed ops (generators) ---------------------------------------------

    def read(self, i: int) -> Generator[Op, Optional[float], float]:
        """Timed element load; ``yield from`` returns the value."""
        value = yield Load(self.region.addr(i))
        return value  # type: ignore[return-value]

    def write(self, i: int, value: float) -> Generator[Op, Optional[float], None]:
        """Timed element store."""
        yield Store(self.region.addr(i), value)

    def addr(self, i: int) -> int:
        """Element address of index ``i``."""
        return self.region.addr(i)

    # -- untimed bulk access --------------------------------------------------

    def values(self, persistent: bool = False) -> List[float]:
        """Untimed bulk read (validation only)."""
        return self.machine.read_region(self.region, persistent=persistent)

    def to_numpy(self, persistent: bool = False) -> np.ndarray:
        """As a numpy vector (untimed)."""
        return np.array(self.values(persistent=persistent), dtype=np.float64)

    def fill(self, values: Sequence[float]) -> None:
        """Durably initialise (pre-existing NVMM contents)."""
        if len(values) != self.n:
            raise WorkloadError(
                f"fill of {len(values)} values into array of {self.n}"
            )
        for addr, v in zip(self.region.element_addrs(), values):
            self.machine.mem.init(addr, float(v))


class PMatrix:
    """A row-major 2-D persistent matrix."""

    def __init__(
        self,
        machine: Machine,
        name: str,
        rows: int,
        cols: int,
        create: bool = True,
    ):
        self.machine = machine
        self.name = name
        self.rows = rows
        self.cols = cols
        self.region: Region = (
            machine.alloc(name, rows * cols) if create else machine.region(name)
        )
        if self.region.num_elements != rows * cols:
            raise WorkloadError(
                f"region {name!r} holds {self.region.num_elements} elements, "
                f"expected {rows * cols}"
            )

    def index(self, i: int, j: int) -> int:
        """Row-major flat index of (i, j)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise WorkloadError(
                f"({i},{j}) out of bounds for {self.rows}x{self.cols} "
                f"matrix {self.name!r}"
            )
        return i * self.cols + j

    def addr(self, i: int, j: int) -> int:
        """Element address of (i, j)."""
        # Hot path for every timed element access: one combined bounds
        # check (an in-range (i, j) is always in range for the region).
        if 0 <= i < self.rows and 0 <= j < self.cols:
            return self.region.base + (i * self.cols + j) * ELEMENT_BYTES
        raise WorkloadError(
            f"({i},{j}) out of bounds for {self.rows}x{self.cols} "
            f"matrix {self.name!r}"
        )

    # -- timed ops -------------------------------------------------------------

    def read(self, i: int, j: int) -> Generator[Op, Optional[float], float]:
        """Timed element load; ``yield from`` returns the value."""
        value = yield Load(self.addr(i, j))
        return value  # type: ignore[return-value]

    def write(
        self, i: int, j: int, value: float
    ) -> Generator[Op, Optional[float], None]:
        """Timed element store."""
        yield Store(self.addr(i, j), value)

    # -- untimed bulk access ----------------------------------------------------

    def to_numpy(self, persistent: bool = False) -> np.ndarray:
        """As a numpy matrix (untimed)."""
        flat = self.machine.read_region(self.region, persistent=persistent)
        return np.array(flat, dtype=np.float64).reshape(self.rows, self.cols)

    def fill(self, array: np.ndarray) -> None:
        """Durably initialise from a numpy array."""
        if array.shape != (self.rows, self.cols):
            raise WorkloadError(
                f"fill shape {array.shape} != ({self.rows},{self.cols})"
            )
        flat = array.reshape(-1)
        for addr, v in zip(self.region.element_addrs(), flat):
            self.machine.mem.init(addr, float(v))

    def row_addrs(self, i: int, j0: int, j1: int) -> List[int]:
        """Element addresses of c[i][j0:j1] (contiguous: flush-friendly)."""
        return [self.addr(i, j) for j in range(j0, j1)]
