"""Persistent-storage workload family: append-only log + hashmap.

The paper's five kernels are dense numeric loops; real NVMM users run
logs, KV stores, and indexes (NVCache, "Logging vs. Paging" in
PAPERS.md).  These two workloads exercise exactly those layouts —
log-structured appends vs in-place slot updates — through the
region-declared protocol (:mod:`repro.workloads.regional`), so each is
registered once and runs under every scheme in :mod:`repro.schemes`:
base, LP, EP, WAL, write-behind, plus the deliberately broken
``wb_nojournal``.

Sharding: every thread owns private regions (its own log / its own
hashmap shard), the sharding-by-key-range story of ROADMAP's serving
scenario in miniature, and the disjointness the scheme layer's
per-thread recovery frontiers require.

* ``log`` appends fixed-width records; each region writes one record's
  payload plus the head counter.  Append-only means no coalescing:
  under write-behind the journal is pure overhead, the log-vs-in-place
  contrast the write-amplification bench shows.
* ``hashmap`` puts keys drawn from a small universe into a fixed-
  capacity open-addressed (linear-probe) table; updates rewrite the
  same slots, so write-behind's per-batch line coalescing beats EP's
  per-region flushes.  The probe loop is value-dependent — which is
  why region workloads are ``stream_safe = False`` and recovery redoes
  *declared* writes instead of re-executing bodies (a probe over a
  torn image could place a key in the wrong slot).
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.schemes import RegionContext, RegionDecl
from repro.sim.address import Region
from repro.sim.isa import Compute
from repro.sim.machine import Machine, ThreadGen
from repro.workloads.arrays import PArray, PMatrix
from repro.workloads.regional import BoundRegionWorkload, RegionWorkload
from repro.workloads.registry import register

#: Payload values are small integers: exact in float64, so recovery
#: verification demands exact equality (same convention as the
#: kernels' integer matrices).
_VALUE_SPAN = 8

#: Per-thread seed stride (any odd prime keeps thread streams apart).
_THREAD_SEED_STRIDE = 7919


@register
class AppendLog(RegionWorkload):
    """Per-thread append-only log of fixed-width records."""

    name = "log"

    def __init__(
        self,
        records: int = 16,
        width: int = 4,
        seed: int = 7,
        wb_batch: int = 4,
    ) -> None:
        if records < 1:
            raise WorkloadError(f"records must be >= 1, got {records}")
        if width < 1:
            raise WorkloadError(f"width must be >= 1, got {width}")
        if wb_batch < 1:
            raise WorkloadError(f"wb_batch must be >= 1, got {wb_batch}")
        self.records = records
        self.width = width
        self.seed = seed
        self.wb_batch = wb_batch

    def record_values(self, tid: int) -> List[List[float]]:
        """Thread ``tid``'s record payloads (deterministic per spec)."""
        rng = random.Random(self.seed + _THREAD_SEED_STRIDE * tid)
        return [
            [float(rng.randint(-_VALUE_SPAN, _VALUE_SPAN)) for _ in range(self.width)]
            for _ in range(self.records)
        ]

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundAppendLog":
        return BoundAppendLog(self, machine, num_threads, engine, create)


class BoundAppendLog(BoundRegionWorkload):
    def _bind_data(self, create: bool) -> None:
        spec = self.spec
        self.data: List[PMatrix] = [
            PMatrix(
                self.machine,
                f"log.data.{t}",
                spec.records,
                spec.width,
                create=create,
            )
            for t in range(self.num_threads)
        ]
        self.heads: List[Region] = [
            self.machine.scalar(f"log.head.{t}", 0.0)
            if create
            else self.machine.region(f"log.head.{t}")
            for t in range(self.num_threads)
        ]
        self.values = [
            spec.record_values(t) for t in range(self.num_threads)
        ]

    def plan(self, tid: int) -> List[RegionDecl]:
        decls = []
        for i, payload in enumerate(self.values[tid]):
            writes: Tuple[Tuple[int, float], ...] = tuple(
                (self.data[tid].addr(i, j), value)
                for j, value in enumerate(payload)
            ) + ((self.heads[tid].base, float(i + 1)),)
            decls.append(RegionDecl(seq=i, label=f"rec{i}", writes=writes))
        return decls

    def region_body(
        self, tid: int, decl: RegionDecl, ctx: RegionContext
    ) -> ThreadGen:
        head = yield from ctx.load(self.heads[tid].base)
        if int(head) != decl.seq:
            raise WorkloadError(
                f"log thread {tid}: head reads {head!r} before append "
                f"{decl.seq}"
            )
        for j, value in enumerate(self.values[tid][decl.seq]):
            yield from ctx.store(self.data[tid].addr(decl.seq, j), value)
        yield Compute(self.spec.width)
        yield from ctx.store(self.heads[tid].base, float(decl.seq + 1))

    # -- verification --------------------------------------------------------

    def reference(self) -> np.ndarray:
        parts = []
        for tid in range(self.num_threads):
            parts.append(
                np.array(self.values[tid], dtype=np.float64).reshape(-1)
            )
            parts.append(np.array([float(self.spec.records)]))
        return np.concatenate(parts)

    def output(self, persistent: bool = False) -> np.ndarray:
        parts = []
        for tid in range(self.num_threads):
            parts.append(
                self.data[tid].to_numpy(persistent=persistent).reshape(-1)
            )
            head = self.machine.read_region(
                self.heads[tid], persistent=persistent
            )[0]
            parts.append(np.array([head]))
        return np.concatenate(parts)


@register
class PersistentHashmap(RegionWorkload):
    """Per-thread open-addressed (linear-probe) persistent hashmap."""

    name = "hashmap"

    def __init__(
        self,
        capacity: int = 32,
        ops: int = 24,
        keys: int = 8,
        seed: int = 11,
        wb_batch: int = 4,
    ) -> None:
        if capacity < 2:
            raise WorkloadError(f"capacity must be >= 2, got {capacity}")
        if not 1 <= keys < capacity:
            raise WorkloadError(
                f"keys must be in [1, capacity), got keys={keys} "
                f"capacity={capacity}"
            )
        if ops < 1:
            raise WorkloadError(f"ops must be >= 1, got {ops}")
        if wb_batch < 1:
            raise WorkloadError(f"wb_batch must be >= 1, got {wb_batch}")
        self.capacity = capacity
        self.ops = ops
        self.keys = keys
        self.seed = seed
        self.wb_batch = wb_batch

    def puts(self, tid: int) -> List[Tuple[int, float, int]]:
        """Thread ``tid``'s (key, value, slot) sequence.

        Slots come from simulating the linear probe over the model
        table — the *declared* slot each put lands in.  The region
        body re-probes with timed loads and must agree; recovery
        never probes (blind redo of the declared writes).
        """
        rng = random.Random(self.seed + _THREAD_SEED_STRIDE * tid)
        table = [0] * self.capacity
        sequence = []
        for _ in range(self.ops):
            key = rng.randint(1, self.keys)
            value = float(rng.randint(-_VALUE_SPAN, _VALUE_SPAN))
            slot = key % self.capacity
            while table[slot] not in (0, key):
                slot = (slot + 1) % self.capacity
            table[slot] = key
            sequence.append((key, value, slot))
        return sequence

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundPersistentHashmap":
        return BoundPersistentHashmap(self, machine, num_threads, engine, create)


class BoundPersistentHashmap(BoundRegionWorkload):
    def _bind_data(self, create: bool) -> None:
        spec = self.spec
        self.slot_keys: List[PArray] = [
            PArray(self.machine, f"hashmap.keys.{t}", spec.capacity, create=create)
            for t in range(self.num_threads)
        ]
        self.slot_vals: List[PArray] = [
            PArray(self.machine, f"hashmap.vals.{t}", spec.capacity, create=create)
            for t in range(self.num_threads)
        ]
        self.put_sequences = [
            spec.puts(t) for t in range(self.num_threads)
        ]

    def plan(self, tid: int) -> List[RegionDecl]:
        decls = []
        for i, (key, value, slot) in enumerate(self.put_sequences[tid]):
            writes = (
                (self.slot_keys[tid].addr(slot), float(key)),
                (self.slot_vals[tid].addr(slot), value),
            )
            decls.append(
                RegionDecl(seq=i, label=f"put{i}", writes=writes)
            )
        return decls

    def region_body(
        self, tid: int, decl: RegionDecl, ctx: RegionContext
    ) -> ThreadGen:
        key, value, declared_slot = self.put_sequences[tid][decl.seq]
        capacity = self.spec.capacity
        slot = key % capacity
        while True:
            current = yield from ctx.load(self.slot_keys[tid].addr(slot))
            if current == 0.0 or current == float(key):
                break
            slot = (slot + 1) % capacity
        if slot != declared_slot:
            raise WorkloadError(
                f"hashmap thread {tid} put {decl.seq}: probe landed in "
                f"slot {slot}, plan declared {declared_slot}"
            )
        yield from ctx.store(self.slot_keys[tid].addr(slot), float(key))
        yield from ctx.store(self.slot_vals[tid].addr(slot), value)
        yield Compute(1)

    # -- verification --------------------------------------------------------

    def reference(self) -> np.ndarray:
        parts = []
        for tid in range(self.num_threads):
            keys = [0.0] * self.spec.capacity
            vals = [0.0] * self.spec.capacity
            for key, value, slot in self.put_sequences[tid]:
                keys[slot] = float(key)
                vals[slot] = value
            parts.append(np.array(keys + vals, dtype=np.float64))
        return np.concatenate(parts)

    def output(self, persistent: bool = False) -> np.ndarray:
        parts = []
        for tid in range(self.num_threads):
            parts.append(
                np.concatenate(
                    [
                        self.slot_keys[tid].to_numpy(persistent=persistent),
                        self.slot_vals[tid].to_numpy(persistent=persistent),
                    ]
                )
            )
        return np.concatenate(parts)
