"""Cholesky factorisation (Table V: "1k-square input matrix cholesky
factorization"; the paper ran this kernel to completion).

Left-looking column Cholesky, out-of-place: the factor ``L`` is built
column by column from the pristine SPD input ``P`` and the already
final columns of ``L`` itself.  Because each column is written exactly
once and the input is never overwritten, a column block is
**idempotent** given its predecessors — recovery needs no reverse
frontier: it walks column blocks in ascending order and recomputes any
block whose checksum does not match (the blocks after it that *do*
match are already correct, since the crashed run computed them from
correct architectural state).

Parallelism: threads partition the rows below the diagonal of each
column; a Barrier after the diagonal element and one after each column
enforce the left-looking dependences.  LP regions are
(column_block, thread), each checksumming the L values that thread
wrote in those columns.
"""

from __future__ import annotations

import math
import random
from typing import Generator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.isa import Barrier, Compute, Fence, Flush, Load, Op, RegionMark, Store
from repro.sim.machine import Machine, ThreadGen
from repro.core.eager import persist_region, writeback_addrs
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.workloads.arrays import PMatrix
from repro.schemes import (
    SCHEME_BASE as VARIANT_BASE,
    SCHEME_EP as VARIANT_EP,
    SCHEME_LP as VARIANT_LP,
)
from repro.workloads.base import (
    BoundWorkload,
    Workload,
    integer_matrix,
)
from repro.workloads.registry import register


@register
class Cholesky(Workload):
    """P = L @ L.T with L lower-triangular; computes L."""

    name = "cholesky"
    variants = (VARIANT_BASE, VARIANT_LP, VARIANT_EP)

    def __init__(
        self, n: int = 48, col_block: int = 8, seed: int = 17
    ) -> None:
        if n % col_block != 0:
            raise WorkloadError(f"n={n} not divisible by col_block={col_block}")
        self.n = n
        self.col_block = col_block
        self.num_blocks = n // col_block
        self.seed = seed

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundCholesky":
        return BoundCholesky(self, machine, num_threads, engine, create)


class BoundCholesky(BoundWorkload):
    def __init__(self, spec, machine, num_threads, engine, create):
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        n = spec.n
        self.pristine = PMatrix(machine, "chol.p", n, n, create=create)
        self.l = PMatrix(machine, "chol.l", n, n, create=create)
        self.lp = LPRuntime(
            machine,
            "chol.cktab",
            dims=(spec.num_blocks, num_threads),
            engine=engine,
            create=create,
        )
        self.markers = [
            machine.scalar(f"chol.progress.{t}", -1.0)
            if create
            else machine.region(f"chol.progress.{t}")
            for t in range(num_threads)
        ]
        if create:
            rng = random.Random(spec.seed)
            m = integer_matrix(rng, n, n, span=3)
            spd = m @ m.T + np.diag([float(4 * n)] * n)
            self.pristine.fill(spd)

    def my_rows(self, tid: int, j: int) -> List[int]:
        """Rows strictly below the diagonal of column j owned by tid."""
        return [
            i for i in range(j + 1, self.spec.n) if i % self.num_threads == tid
        ]

    def diag_owner(self, j: int) -> int:
        """Thread that computes column j's diagonal element."""
        return j % self.num_threads

    # ------------------------------------------------------------------
    # normal execution
    # ------------------------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return [
            self._worker(variant, tid, start_block=0)
            for tid in range(self.num_threads)
        ]

    def _worker(self, variant: str, tid: int, start_block: int) -> ThreadGen:
        spec = self.spec
        for block in range(start_block, spec.num_blocks):
            yield from self.tag(f"block{block}")
            yield RegionMark(f"chol:{variant}:b{block}:t{tid}")
            yield from self._block(variant, tid, block)
            yield from self.tag()

    def _block(
        self, variant: str, tid: int, block: int
    ) -> Generator[Op, Optional[float], None]:
        spec = self.spec
        j0 = block * spec.col_block
        ck: Optional[RegionChecksum] = None
        if variant == VARIANT_LP:
            ck = self.lp.begin_region()

        for j in range(j0, j0 + spec.col_block):
            if self.diag_owner(j) == tid:
                d = yield from self._diagonal(j)
                if ck is not None:
                    yield from ck.update(d)
            yield Barrier()  # everyone needs L[j][j]

            for i in self.my_rows(tid, j):
                v = yield from self._offdiag(i, j)
                if ck is not None:
                    yield from ck.update(v)
            yield Barrier()  # column j final before j+1 starts

        if variant == VARIANT_LP:
            assert ck is not None
            yield from self.lp.commit(ck, block, tid)
        elif variant == VARIANT_EP:
            # persist the finished region: clwb (later columns re-read
            # every earlier column, see core.eager.writeback_addrs) at
            # the LP-region granularity Table IV prescribes, fence, and
            # durably bump the progress marker.
            yield from writeback_addrs(
                [
                    self.l.addr(i, j)
                    for i, j in self._region_value_order(block, tid)
                ]
            )
            yield Fence()
            marker = self.markers[tid]
            yield Store(marker.base, float(block))
            yield Flush(marker.base)
            yield Fence()

    def _diagonal(self, j: int) -> Generator[Op, Optional[float], float]:
        """L[j][j] = sqrt(P[j][j] - sum_k L[j][k]^2)."""
        s = yield from self.pristine.read(j, j)
        for k in range(j):
            v = yield from self.l.read(j, k)
            s -= v * v
        yield Compute(2 * j + 2)
        d = math.sqrt(s)
        yield from self.l.write(j, j, d)
        return d

    def _offdiag(self, i: int, j: int) -> Generator[Op, Optional[float], float]:
        """L[i][j] = (P[i][j] - sum_k L[i][k] L[j][k]) / L[j][j]."""
        s = yield from self.pristine.read(i, j)
        for k in range(j):
            a = yield from self.l.read(i, k)
            b = yield from self.l.read(j, k)
            s -= a * b
        d = yield from self.l.read(j, j)
        v = s / d
        yield Compute(2 * j + 2)
        yield from self.l.write(i, j, v)
        return v

    # ------------------------------------------------------------------
    # recovery: ascending over column blocks, idempotent repair
    # ------------------------------------------------------------------

    def recovery_threads(self) -> List[ThreadGen]:
        """Single-threaded recovery (a column block's repair needs all
        rows, and blocks must go in ascending order)."""
        return [self._recover()]

    def _recover(self) -> ThreadGen:
        spec = self.spec
        yield RegionMark("chol:recover")
        for block in range(spec.num_blocks):
            consistent = True
            for tid in range(self.num_threads):
                matches = yield from self._region_matches(block, tid)
                if not matches:
                    consistent = False
                    break
            if consistent:
                continue
            yield RegionMark(f"chol:recover:repair:b{block}")
            yield from self._repair_block(block)

    def _region_value_order(self, block: int, tid: int):
        """(i, j) pairs in checksum-update order for (block, tid)."""
        spec = self.spec
        j0 = block * spec.col_block
        for j in range(j0, j0 + spec.col_block):
            if self.diag_owner(j) == tid:
                yield j, j
            for i in self.my_rows(tid, j):
                yield i, j

    def _region_matches(
        self, block: int, tid: int
    ) -> Generator[Op, Optional[float], bool]:
        if not self.lp.region_committed(block, tid):
            return False
        ck = RegionChecksum(self.lp.engine)
        for i, j in self._region_value_order(block, tid):
            v = yield from self.l.read(i, j)
            ck.update_silent(v)
            yield Compute(self.lp.engine.flops_per_update)
        stored = yield Load(self.lp.table.slot_addr(block, tid))
        return float(ck.value) == stored

    def _repair_block(self, block: int) -> Generator[Op, Optional[float], None]:
        """Recompute one column block from P and the final columns
        before it, persist eagerly, recommit all its checksums."""
        spec = self.spec
        j0 = block * spec.col_block
        values = {}
        for j in range(j0, j0 + spec.col_block):
            d = yield from self._diagonal(j)
            values[(j, j)] = d
            for i in range(j + 1, spec.n):
                values[(i, j)] = (yield from self._offdiag(i, j))
        yield from persist_region([self.l.addr(i, j) for (i, j) in values])
        for tid in range(self.num_threads):
            ck = RegionChecksum(self.lp.engine)
            for i, j in self._region_value_order(block, tid):
                ck.update_silent(values[(i, j)])
                yield Compute(self.lp.engine.flops_per_update)
            yield from self.lp.table.commit_eager(ck.value, block, tid)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        p = self.pristine.to_numpy()
        n = self.spec.n
        low = np.zeros((n, n))
        for j in range(n):
            s = p[j, j]
            for k in range(j):
                s -= low[j, k] * low[j, k]
            low[j, j] = math.sqrt(s)
            for i in range(j + 1, n):
                s = p[i, j]
                for k in range(j):
                    s -= low[i, k] * low[j, k]
                low[i, j] = s / low[j, j]
        return low

    def output(self, persistent: bool = False) -> np.ndarray:
        return self.l.to_numpy(persistent=persistent)
