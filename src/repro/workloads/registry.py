"""Name -> workload registry (Table V)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import WorkloadError
from repro.workloads.base import Workload

_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> Type[Workload]:
    """Workload class registered under ``name``."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None


def available_workloads() -> List[str]:
    """Sorted names of the registered workloads."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    """Import workload modules so their @register decorators run."""
    import repro.workloads.tmm  # noqa: F401
    import repro.workloads.cholesky  # noqa: F401
    import repro.workloads.conv2d  # noqa: F401
    import repro.workloads.gauss  # noqa: F401
    import repro.workloads.fft  # noqa: F401
    import repro.workloads.storage  # noqa: F401
