"""The paper's evaluation kernels (Table V), built on the simulator.

Each workload implements the variants of Table IV it is evaluated
with — ``base`` (no failure safety), ``lp`` (Lazy Persistency), ``ep``
(EagerRecompute) and, for TMM, ``wal`` (durable transactions with
write-ahead logging) — plus crash recovery and output verification.
"""

from repro.workloads.base import BoundWorkload, Workload
from repro.workloads.registry import available_workloads, get_workload

__all__ = [
    "BoundWorkload",
    "Workload",
    "available_workloads",
    "get_workload",
]
