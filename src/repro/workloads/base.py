"""Workload protocol.

A :class:`Workload` holds problem parameters (matrix size, tile size).
``bind(machine, ...)`` allocates its persistent data on a machine and
returns a :class:`BoundWorkload`, which produces the thread generators
for a chosen variant, the recovery threads to run after a crash, and
verification against a numpy reference.

Rebinding (``create=False``) attaches to regions that already exist —
that is how recovery code addresses the same arrays on the post-crash
machine.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.schemes import (
    SCHEME_BASE,
    SCHEME_EP,
    SCHEME_LP,
    SCHEME_WAL,
)
from repro.sim.isa import Phase
from repro.sim.machine import Machine, ThreadGen

#: Variants of Table IV.  The names live in :mod:`repro.schemes` (the
#: single source of truth for the variant axis); these aliases keep
#: the historical import path the kernels and tests grew up with.
VARIANT_BASE = SCHEME_BASE
VARIANT_LP = SCHEME_LP
VARIANT_EP = SCHEME_EP
VARIANT_WAL = SCHEME_WAL


def integer_matrix(rng: random.Random, rows: int, cols: int, span: int = 4):
    """A matrix of small integer-valued floats.

    Integer inputs keep every kernel's arithmetic exact in float64, so
    tiled/blocked summation orders agree bit-for-bit with the numpy
    reference and recovery verification can demand exact equality.
    """
    return np.array(
        [[float(rng.randint(-span, span)) for _ in range(cols)] for _ in range(rows)],
        dtype=np.float64,
    )


class BoundWorkload(ABC):
    """A workload instance bound to one machine's regions."""

    def __init__(self, machine: Machine, num_threads: int, engine: str) -> None:
        if num_threads < 1:
            raise WorkloadError("need at least one thread")
        self.machine = machine
        self.num_threads = num_threads
        self.engine_name = engine
        #: Provenance tagging is opt-in: when off (the default) the op
        #: stream is byte-identical to pre-provenance runs, pinned by
        #: tests/obs/test_provenance.py.
        self.provenance = False

    # -- provenance ------------------------------------------------------------

    def tag(self, label: Optional[str] = None) -> Iterator[Phase]:
        """Yield one :class:`Phase` frame op — or nothing when untagged.

        Workload coroutines write ``yield from self.tag("kk0")`` to push
        a provenance frame and ``yield from self.tag()`` to pop it; with
        ``self.provenance`` left False both are zero ops, so tagging
        call-sites cost nothing on ordinary runs.
        """
        if self.provenance:
            yield Phase(label)

    # -- execution -------------------------------------------------------------

    @abstractmethod
    def threads(self, variant: str) -> List[ThreadGen]:
        """Thread generators for one Table IV variant."""

    @abstractmethod
    def recovery_threads(self) -> List[ThreadGen]:
        """Recovery + resumed execution, run on the post-crash machine.

        Must be called on a bound instance attached (rebound) to the
        post-crash machine.  Recovery uses Eager Persistency so a crash
        during recovery cannot lose progress (section III-E).
        """

    def recovery_threads_for(self, variant: str) -> List[ThreadGen]:
        """Recovery threads for the variant that crashed.

        The default hands back :meth:`recovery_threads`, which is only
        correct when that path is conservative — able to rebuild the
        output from any reachable image regardless of which variant
        wrote it.  Workloads whose eager/WAL recovery trusts markers or
        logs override this to dispatch per variant.
        """
        return self.recovery_threads()

    # -- verification -----------------------------------------------------------

    @abstractmethod
    def reference(self) -> np.ndarray:
        """Expected output, computed with numpy from the same inputs."""

    @abstractmethod
    def output(self, persistent: bool = False) -> np.ndarray:
        """The kernel's output as currently held by the machine."""

    def verify(self, persistent: bool = False, atol: float = 0.0) -> bool:
        """Compare output to reference (exact by default)."""
        got = self.output(persistent=persistent)
        want = self.reference()
        if atol == 0.0:
            return bool(np.array_equal(got, want))
        return bool(np.allclose(got, want, atol=atol, rtol=0.0))

    def verification_error(self, persistent: bool = False) -> float:
        """Max absolute output-vs-reference error."""
        got = self.output(persistent=persistent)
        want = self.reference()
        return float(np.max(np.abs(got - want))) if got.size else 0.0


class Workload(ABC):
    """Problem-parameterised workload factory."""

    #: Registry name (e.g. "tmm").
    name: str = "abstract"
    #: Variants this workload implements.
    variants: Tuple[str, ...] = (VARIANT_BASE, VARIANT_LP, VARIANT_EP)
    #: Deliberately broken variants, runnable but excluded from the
    #: performance sweeps (``variants``): fault-injection targets the
    #: crash checker must flag (e.g. tmm's ``ep_nofence``).
    broken_variants: Tuple[str, ...] = ()
    #: Whether this workload's forward runs are value-deterministic per
    #: (workload, config, variant, threads) — the contract that lets
    #: the analysis layer record one replay run as a pre-decoded op
    #: stream (:mod:`repro.sim.opstream`) and reuse it for every later
    #: run of the same point.  All registry workloads are (their only
    #: randomness is the seeded input matrix, part of the spec); a
    #: workload whose op sequence depends on loaded values in a
    #: non-reproducible way must set this False to stay off the stream
    #: cache (``repro.analysis.runner.cached_op_stream`` refuses it).
    stream_safe: bool = True

    @abstractmethod
    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> BoundWorkload:
        """Allocate (or re-attach to) this workload's data on a machine."""

    def check_variant(self, variant: str) -> None:
        """Raise WorkloadError for variants this workload lacks.

        Distinguishes "no such scheme anywhere" (a typo — report the
        scheme registry) from "a real scheme this workload does not
        implement" (report the workload's own variant list).
        """
        if variant in self.variants or variant in self.broken_variants:
            return
        from repro.schemes import scheme_names

        if variant not in scheme_names():
            raise WorkloadError(
                f"unknown persistency scheme {variant!r}; "
                f"registered schemes: {scheme_names()}"
            )
        raise WorkloadError(
            f"workload {self.name!r} has no variant {variant!r}; "
            f"available: {self.variants + self.broken_variants}"
        )
