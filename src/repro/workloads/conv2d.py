"""2-D convolution (Table V: "1k-square input matrix 2D convolution").

Out-of-place convolution of an image with a small stencil.  LP regions
are row blocks of the output, keyed (row_block, thread); because the
kernel never overwrites its input, every region is **idempotent**
(section III-E's trivial-recovery special case): recovery simply
recomputes each region whose checksum does not match, in any order,
with no restart frontier.

Work partition: thread t owns row blocks with ``block % P == t``.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.sim.isa import Compute, Fence, Flush, Load, Op, RegionMark, Store
from repro.sim.machine import Machine, ThreadGen
from repro.core.eager import persist_addrs, persist_region
from repro.core.lazy import LPRuntime
from repro.core.region import RegionChecksum
from repro.workloads.arrays import PMatrix
from repro.schemes import (
    SCHEME_BASE as VARIANT_BASE,
    SCHEME_EP as VARIANT_EP,
    SCHEME_LP as VARIANT_LP,
)
from repro.workloads.base import (
    BoundWorkload,
    Workload,
    integer_matrix,
)
from repro.workloads.registry import register


@register
class Conv2D(Workload):
    """out = image (*) kernel, valid region, out-of-place."""

    name = "conv2d"
    variants = (VARIANT_BASE, VARIANT_LP, VARIANT_EP)

    def __init__(
        self,
        n: int = 64,
        ksize: int = 3,
        row_block: int = 4,
        seed: int = 11,
    ) -> None:
        if ksize % 2 != 1 or ksize < 1:
            raise WorkloadError("kernel size must be odd and positive")
        self.out_n = n - ksize + 1
        if self.out_n <= 0:
            raise WorkloadError(f"image {n} too small for kernel {ksize}")
        if self.out_n % row_block != 0:
            raise WorkloadError(
                f"output rows {self.out_n} not divisible by row_block {row_block}"
            )
        self.n = n
        self.ksize = ksize
        self.row_block = row_block
        self.seed = seed
        self.num_blocks = self.out_n // row_block

    def bind(
        self,
        machine: Machine,
        num_threads: int = 1,
        engine: str = "modular",
        create: bool = True,
    ) -> "BoundConv2D":
        return BoundConv2D(self, machine, num_threads, engine, create)


class BoundConv2D(BoundWorkload):
    def __init__(self, spec, machine, num_threads, engine, create):
        super().__init__(machine, num_threads, engine)
        self.spec = spec
        n, k = spec.n, spec.ksize
        self.image = PMatrix(machine, "conv.image", n, n, create=create)
        self.kernel = PMatrix(machine, "conv.kernel", k, k, create=create)
        self.out = PMatrix(
            machine, "conv.out", spec.out_n, spec.out_n, create=create
        )
        self.lp = LPRuntime(
            machine,
            "conv.cktab",
            dims=(spec.num_blocks, num_threads),
            engine=engine,
            create=create,
        )
        self.markers = [
            machine.scalar(f"conv.progress.{t}", -1.0)
            if create
            else machine.region(f"conv.progress.{t}")
            for t in range(num_threads)
        ]
        if create:
            rng = random.Random(spec.seed)
            self.image.fill(integer_matrix(rng, n, n))
            self.kernel.fill(integer_matrix(rng, k, k, span=2))

    def my_blocks(self, tid: int) -> List[int]:
        """Output row blocks owned by thread ``tid``."""
        return [
            b for b in range(self.spec.num_blocks) if b % self.num_threads == tid
        ]

    def owner_of(self, block: int) -> int:
        """Owning thread of a row block."""
        return block % self.num_threads

    # ------------------------------------------------------------------
    # normal execution
    # ------------------------------------------------------------------

    def threads(self, variant: str) -> List[ThreadGen]:
        self.spec.check_variant(variant)
        return [self._worker(variant, tid) for tid in range(self.num_threads)]

    def _worker(self, variant: str, tid: int) -> ThreadGen:
        for block in self.my_blocks(tid):
            yield from self.tag(f"block{block}")
            yield RegionMark(f"conv:{variant}:block{block}")
            yield from self._region(variant, tid, block)
            yield from self.tag()

    def _region(
        self, variant: str, tid: int, block: int
    ) -> Generator[Op, Optional[float], None]:
        spec = self.spec
        r0 = block * spec.row_block
        ck: Optional[RegionChecksum] = None
        if variant == VARIANT_LP:
            ck = self.lp.begin_region()

        for i in range(r0, r0 + spec.row_block):
            for j in range(spec.out_n):
                s = yield from self._pixel(i, j)
                yield from self.out.write(i, j, s)
                if ck is not None:
                    yield from ck.update(s)
            if variant == VARIANT_EP:
                yield from persist_addrs(self.out.row_addrs(i, 0, spec.out_n))
                yield Fence()
                marker = self.markers[tid]
                yield Store(marker.base, float(i))
                yield Flush(marker.base)
                yield Fence()

        if variant == VARIANT_LP:
            assert ck is not None
            yield from self.lp.commit(ck, block, tid)

    def _pixel(self, i: int, j: int) -> Generator[Op, Optional[float], float]:
        spec = self.spec
        s = 0.0
        for di in range(spec.ksize):
            for dj in range(spec.ksize):
                iv = yield from self.image.read(i + di, j + dj)
                kv = yield from self.kernel.read(di, dj)
                s += iv * kv
        yield Compute(2 * spec.ksize * spec.ksize)
        return s

    # ------------------------------------------------------------------
    # recovery: idempotent regions, no frontier
    # ------------------------------------------------------------------

    def recovery_threads(self) -> List[ThreadGen]:
        return [self._recover(tid) for tid in range(self.num_threads)]

    def _recover(self, tid: int) -> ThreadGen:
        for block in self.my_blocks(tid):
            matches = yield from self._block_matches(block)
            if matches:
                continue
            yield RegionMark(f"conv:recover:block{block}")
            yield from self._repair_block(tid, block)

    def _block_matches(self, block: int) -> Generator[Op, Optional[float], bool]:
        tid = self.owner_of(block)
        if not self.lp.region_committed(block, tid):
            return False
        spec = self.spec
        ck = RegionChecksum(self.lp.engine)
        r0 = block * spec.row_block
        for i in range(r0, r0 + spec.row_block):
            for j in range(spec.out_n):
                v = yield from self.out.read(i, j)
                ck.update_silent(v)
                yield Compute(self.lp.engine.flops_per_update)
        stored = yield Load(self.lp.table.slot_addr(block, tid))
        return float(ck.value) == stored

    def _repair_block(
        self, tid: int, block: int
    ) -> Generator[Op, Optional[float], None]:
        """Idempotent repair: re-run the region with Eager Persistency."""
        spec = self.spec
        r0 = block * spec.row_block
        ck = RegionChecksum(self.lp.engine)
        addrs: List[int] = []
        for i in range(r0, r0 + spec.row_block):
            for j in range(spec.out_n):
                s = yield from self._pixel(i, j)
                yield from self.out.write(i, j, s)
                ck.update_silent(s)
                yield Compute(self.lp.engine.flops_per_update)
                addrs.append(self.out.addr(i, j))
        yield from persist_region(addrs)
        yield from self.lp.table.commit_eager(ck.value, block, tid)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        img = self.image.to_numpy()
        ker = self.kernel.to_numpy()
        spec = self.spec
        out = np.zeros((spec.out_n, spec.out_n))
        # same accumulation order as the kernel: di outer, dj inner
        for i in range(spec.out_n):
            for j in range(spec.out_n):
                s = 0.0
                for di in range(spec.ksize):
                    for dj in range(spec.ksize):
                        s += img[i + di, j + dj] * ker[di, dj]
                out[i, j] = s
        return out

    def output(self, persistent: bool = False) -> np.ndarray:
        return self.out.to_numpy(persistent=persistent)
