"""Parameter sweeps for the sensitivity studies (Figures 11, 14, 15).

Each sweep varies exactly the knob its figure varies — NVMM latency,
thread count, L2 capacity, checksum engine, cleaner period — holding
everything else fixed, and returns per-point
:class:`~repro.analysis.experiments.ExperimentResult` objects.

All sweeps fan their points out through the parallel experiment
engine (:mod:`repro.analysis.runner`): pass ``n_jobs=N`` to simulate
independent points on N processes and ``cache=ResultCache()`` to
memoize each point on disk.  The defaults (``n_jobs=1``, no cache)
reproduce the original serial behaviour exactly.

``obs_interval=N`` additionally samples every point into an N-cycle
interval series (``result.intervals``); sampled points are cached
under distinct keys, so plain sweeps and sampled sweeps never share
cache entries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult
from repro.analysis.runner import Job, ResultCache, run_jobs
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload


def cores_for_workers(num_workers: int, config: MachineConfig) -> int:
    """Core count for ``num_workers`` worker threads + 1 master thread.

    The paper's setup always reserves one core for the master (8
    workers on a 9-core machine); a sweep never shrinks the configured
    machine below its own core count.
    """
    return max(num_workers + 1, config.num_cores)


def sweep_nvmm_latency(
    workload: Workload,
    config: MachineConfig,
    latencies: Sequence[Tuple[float, float]],
    variants: Sequence[str] = ("base", "lp", "ep"),
    num_threads: int = 8,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs_interval: Optional[float] = None,
) -> Dict[Tuple[float, float], Dict[str, ExperimentResult]]:
    """Figure 14(a): (read, write) latency points, in cycles."""
    latencies = [tuple(point) for point in latencies]
    jobs = [
        Job(
            workload,
            config.with_nvmm_latency(read_cycles, write_cycles),
            v,
            num_threads=num_threads,
            obs_interval=obs_interval,
        )
        for read_cycles, write_cycles in latencies
        for v in variants
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return _regroup(latencies, variants, results)


def sweep_threads(
    workload: Workload,
    config: MachineConfig,
    thread_counts: Sequence[int],
    variants: Sequence[str] = ("base", "lp"),
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs_interval: Optional[float] = None,
) -> Dict[int, Dict[str, ExperimentResult]]:
    """Figure 14(b): scalability from 1 to 16 threads."""
    jobs = [
        Job(
            workload,
            config.with_cores(cores_for_workers(p, config)),
            v,
            num_threads=p,
            obs_interval=obs_interval,
        )
        for p in thread_counts
        for v in variants
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return _regroup(thread_counts, variants, results)


def sweep_l2_size(
    workload: Workload,
    config: MachineConfig,
    sizes_bytes: Sequence[int],
    variants: Sequence[str] = ("base", "lp"),
    num_threads: int = 8,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs_interval: Optional[float] = None,
) -> Dict[int, Dict[str, ExperimentResult]]:
    """Figure 15(a): L2 capacity sweep."""
    jobs = [
        Job(
            workload,
            config.with_l2_size(size),
            v,
            num_threads=num_threads,
            obs_interval=obs_interval,
        )
        for size in sizes_bytes
        for v in variants
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return _regroup(sizes_bytes, variants, results)


def sweep_checksum(
    workload: Workload,
    config: MachineConfig,
    engines: Sequence[str],
    num_threads: int = 8,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs_interval: Optional[float] = None,
) -> Dict[str, ExperimentResult]:
    """Figure 15(b): LP under each error-detection code."""
    jobs = [
        Job(
            workload,
            config,
            "lp",
            num_threads=num_threads,
            engine=e,
            obs_interval=obs_interval,
        )
        for e in engines
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return dict(zip(engines, results))


def sweep_cleaner_period(
    workload: Workload,
    config: MachineConfig,
    periods: Sequence[Optional[float]],
    variant: str = "lp",
    num_threads: int = 8,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs_interval: Optional[float] = None,
) -> Dict[Optional[float], ExperimentResult]:
    """Figure 11: periodic-flush interval sweep (None = no cleaner)."""
    jobs = [
        Job(
            workload,
            config,
            variant,
            num_threads=num_threads,
            cleaner_period=p,
            obs_interval=obs_interval,
        )
        for p in periods
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return dict(zip(periods, results))


def _regroup(points, variants, results: List[ExperimentResult]):
    """Flat engine output -> {point: {variant: result}} (point-major)."""
    out = {}
    it = iter(results)
    for point in points:
        out[point] = {v: next(it) for v in variants}
    return out
