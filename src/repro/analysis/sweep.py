"""Parameter sweeps for the sensitivity studies (Figures 11, 14, 15).

Each sweep varies exactly the knob its figure varies — NVMM latency,
thread count, L2 capacity, checksum engine, cleaner period — holding
everything else fixed, and returns per-point
:class:`~repro.analysis.experiments.ExperimentResult` objects.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult, run_variant
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload


def sweep_nvmm_latency(
    workload: Workload,
    config: MachineConfig,
    latencies: Sequence[Tuple[float, float]],
    variants: Sequence[str] = ("base", "lp", "ep"),
    num_threads: int = 8,
) -> Dict[Tuple[float, float], Dict[str, ExperimentResult]]:
    """Figure 14(a): (read, write) latency points, in cycles."""
    out: Dict[Tuple[float, float], Dict[str, ExperimentResult]] = {}
    for read_cycles, write_cycles in latencies:
        cfg = config.with_nvmm_latency(read_cycles, write_cycles)
        out[(read_cycles, write_cycles)] = {
            v: run_variant(workload, cfg, v, num_threads=num_threads)
            for v in variants
        }
    return out


def sweep_threads(
    workload: Workload,
    config: MachineConfig,
    thread_counts: Sequence[int],
    variants: Sequence[str] = ("base", "lp"),
) -> Dict[int, Dict[str, ExperimentResult]]:
    """Figure 14(b): scalability from 1 to 16 threads."""
    out: Dict[int, Dict[str, ExperimentResult]] = {}
    for p in thread_counts:
        cfg = config.with_cores(max(p + 1, config.num_cores, p))
        out[p] = {
            v: run_variant(workload, cfg, v, num_threads=p) for v in variants
        }
    return out


def sweep_l2_size(
    workload: Workload,
    config: MachineConfig,
    sizes_bytes: Sequence[int],
    variants: Sequence[str] = ("base", "lp"),
    num_threads: int = 8,
) -> Dict[int, Dict[str, ExperimentResult]]:
    """Figure 15(a): L2 capacity sweep."""
    out: Dict[int, Dict[str, ExperimentResult]] = {}
    for size in sizes_bytes:
        cfg = config.with_l2_size(size)
        out[size] = {
            v: run_variant(workload, cfg, v, num_threads=num_threads)
            for v in variants
        }
    return out


def sweep_checksum(
    workload: Workload,
    config: MachineConfig,
    engines: Sequence[str],
    num_threads: int = 8,
) -> Dict[str, ExperimentResult]:
    """Figure 15(b): LP under each error-detection code."""
    return {
        e: run_variant(workload, config, "lp", num_threads=num_threads, engine=e)
        for e in engines
    }


def sweep_cleaner_period(
    workload: Workload,
    config: MachineConfig,
    periods: Sequence[Optional[float]],
    variant: str = "lp",
    num_threads: int = 8,
) -> Dict[Optional[float], ExperimentResult]:
    """Figure 11: periodic-flush interval sweep (None = no cleaner)."""
    return {
        p: run_variant(
            workload,
            config,
            variant,
            num_threads=num_threads,
            cleaner_period=p,
        )
        for p in periods
    }
