"""Single-run experiment driver.

``run_variant`` is the one entry point every bench and example uses:
build a machine, bind a workload, run one Table IV variant, verify the
output, and return an :class:`ExperimentResult` with the metrics the
paper reports (execution cycles, NVMM writes, L2 miss rate, hazard
counters, max volatility duration).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional, Sequence

from repro.errors import WorkloadError
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.base import Workload


@dataclass
class ExperimentResult:
    """Metrics from one (workload, variant, config) run."""

    workload: str
    variant: str
    num_threads: int
    exec_cycles: float
    nvmm_writes: int
    nvmm_reads: int
    l2_miss_rate: float
    max_volatility_cycles: float
    hazards: Dict[str, int]
    writes_by_cause: Dict[str, int] = field(default_factory=dict)
    verified: bool = True
    ops_executed: int = 0
    cleaner_writes: int = 0
    #: Writes from draining still-resident dirty lines at window end
    #: (0 unless ``run_variant(..., drain=True)``).
    drain_writes: int = 0
    #: Stall cycles by cause, as attributed by the timing pipeline's
    #: :class:`~repro.sim.events.LatencyLedger` (empty under the
    #: functional model, which never stalls).
    stalls: Dict[str, float] = field(default_factory=dict)
    #: Interval time series from the probe bus (the JSON-safe dict of
    #: :meth:`repro.obs.intervals.IntervalSampler.series`); ``None``
    #: unless ``run_variant(..., obs_interval=N)`` sampled the run.
    #: Results carrying a series are cached under a distinct key
    #: (``Job.obs_interval``), so plain runs never pay for or see it.
    intervals: Optional[Dict[str, object]] = None

    @property
    def total_writes(self) -> int:
        """In-window writes plus the end-of-window drain.

        At this reproduction's scale the dirty lines still resident
        when the window closes are a large fraction of a short run's
        traffic; counting their eventual writeback removes that
        window-boundary artifact (the paper's multi-second runs
        amortize it to nothing).  Write-amplification figures use this.
        """
        return self.nvmm_writes + self.drain_writes

    def summary_dict(self) -> Dict[str, object]:
        """Flat metric dict for reporting (CLI, logs)."""
        out: Dict[str, object] = {
            "exec_cycles": round(self.exec_cycles, 1),
            "nvmm_writes": self.nvmm_writes,
            "drain_writes": self.drain_writes,
            "nvmm_reads": self.nvmm_reads,
            "l2_miss_rate": round(self.l2_miss_rate, 4),
            "max_volatility_cycles": round(self.max_volatility_cycles, 1),
            "ops_executed": self.ops_executed,
            "verified": self.verified,
        }
        for name, count in sorted(self.hazards.items()):
            out[f"hazard_{name}"] = count
        return out

    def to_dict(self) -> Dict[str, object]:
        """Full, lossless field dump (the on-disk cache record body)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        Strict on shape: unknown or missing fields raise (``TypeError``
        / ``KeyError``), which the result cache treats as a corrupted
        entry and falls back to re-running the experiment.
        """
        names = {f.name for f in fields(cls)}
        extra = set(data) - names
        if extra:
            raise KeyError(f"unknown ExperimentResult fields: {sorted(extra)}")
        return cls(**data)

    def normalized_to(self, base: "ExperimentResult") -> Dict[str, float]:
        """Execution-time and write ratios vs a baseline run (how every
        number in Figures 10-15 is reported)."""
        return {
            "exec_time": self.exec_cycles / base.exec_cycles,
            "num_writes": (
                self.nvmm_writes / base.nvmm_writes
                if base.nvmm_writes
                else float("inf")
            ),
        }


def run_variant(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    num_threads: int = 8,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    verify: bool = True,
    drain: bool = False,
    obs_interval: Optional[float] = None,
    observers: Optional[Sequence[object]] = None,
    provenance: bool = False,
) -> ExperimentResult:
    """Run one variant start-to-finish and collect its metrics.

    ``obs_interval`` samples the run into an ``obs_interval``-cycle
    time series (the result's ``intervals`` field); ``observers`` taps
    arbitrary probe observers (e.g. a ``TraceRecorder``) into the run.
    Either one attaches the probe bus around the measured window only
    — the drain pass stays untraced so writeback event counts match
    the in-window ``nvmm_writes``.  Plain runs (both ``None``) never
    touch ``repro.obs``.  ``provenance`` opts the bound workload into
    emitting free :class:`~repro.sim.isa.Phase` frame ops, which stall
    profilers (:class:`repro.obs.profile.StallFlame`) fold into
    per-phase attribution; untagged runs are byte-identical to
    pre-provenance ones.
    """
    workload.check_variant(variant)
    if num_threads > config.num_cores:
        raise WorkloadError(
            f"{num_threads} threads need at least {num_threads} cores, "
            f"config has {config.num_cores}"
        )
    machine = Machine(config)
    if cleaner_period is not None:
        machine.cleaner = PeriodicCleaner(cleaner_period)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    if provenance:
        bound.provenance = True

    sampler = None
    if obs_interval is not None or observers:
        # Imported lazily: plain runs must not pay for (or depend on)
        # the observability package.
        from repro.obs import IntervalSampler, ProbeBus, attach_probes

        obs_list = list(observers or [])
        if obs_interval is not None:
            sampler = IntervalSampler(obs_interval)
            obs_list.append(sampler)
        attach_probes(machine, ProbeBus(obs_list))
    try:
        result = machine.run(bound.threads(variant))
    finally:
        if obs_interval is not None or observers:
            from repro.obs import detach_probes

            detach_probes(machine)
    exec_cycles = result.exec_cycles
    in_window_writes = result.stats.nvmm_writes
    drain_writes = machine.drain() if drain else 0

    verified = bound.verify() if verify else True
    if verify and not verified:
        raise WorkloadError(
            f"{workload.name}/{variant} produced a wrong result; "
            f"max error {bound.verification_error()}"
        )
    return ExperimentResult(
        workload=workload.name,
        variant=variant,
        num_threads=num_threads,
        exec_cycles=exec_cycles,
        nvmm_writes=in_window_writes,
        drain_writes=drain_writes,
        nvmm_reads=result.stats.nvmm_reads,
        l2_miss_rate=result.stats.l2_miss_rate,
        max_volatility_cycles=result.stats.max_volatility_cycles,
        hazards=result.stats.hazard_totals(),
        writes_by_cause=dict(result.stats.writes_by_cause),
        verified=verified,
        ops_executed=result.ops_executed,
        cleaner_writes=result.stats.writes_by_cause.get("cleaner", 0),
        stalls=result.stats.stall_summary(),
        intervals=sampler.series() if sampler is not None else None,
    )


def compare_variants(
    workload: Workload,
    config: MachineConfig,
    variants,
    num_threads: int = 8,
    engine: str = "modular",
    drain: bool = False,
    n_jobs: int = 1,
    cache=None,
    obs_interval: Optional[float] = None,
) -> Dict[str, ExperimentResult]:
    """Run several variants of one workload under identical conditions.

    ``n_jobs``/``cache`` fan the variants out through the parallel
    experiment engine (:mod:`repro.analysis.runner`); the defaults run
    serially with no on-disk cache, exactly like ``run_variant`` in a
    loop.
    """
    # Imported here: runner depends on this module.
    from repro.analysis.runner import Job, run_jobs

    jobs = [
        Job(
            workload,
            config,
            v,
            num_threads=num_threads,
            engine=engine,
            drain=drain,
            obs_interval=obs_interval,
        )
        for v in variants
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return dict(zip(variants, results))
