"""Single-run experiment driver.

``run_variant`` is the one entry point every bench and example uses:
build a machine, bind a workload, run one Table IV variant, verify the
output, and return an :class:`ExperimentResult` with the metrics the
paper reports (execution cycles, NVMM writes, L2 miss rate, hazard
counters, max volatility duration).
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError, WorkloadError
from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.base import Workload


@dataclass
class ExperimentResult:
    """Metrics from one (workload, variant, config) run."""

    workload: str
    variant: str
    num_threads: int
    exec_cycles: float
    nvmm_writes: int
    nvmm_reads: int
    l2_miss_rate: float
    max_volatility_cycles: float
    hazards: Dict[str, int]
    writes_by_cause: Dict[str, int] = field(default_factory=dict)
    verified: bool = True
    ops_executed: int = 0
    cleaner_writes: int = 0
    #: Writes from draining still-resident dirty lines at window end
    #: (0 unless ``run_variant(..., drain=True)``).
    drain_writes: int = 0
    #: Stall cycles by cause, as attributed by the timing pipeline's
    #: :class:`~repro.sim.events.LatencyLedger` (empty under the
    #: functional model, which never stalls).
    stalls: Dict[str, float] = field(default_factory=dict)
    #: Interval time series from the probe bus (the JSON-safe dict of
    #: :meth:`repro.obs.intervals.IntervalSampler.series`); ``None``
    #: unless ``run_variant(..., obs_interval=N)`` sampled the run.
    #: Results carrying a series are cached under a distinct key
    #: (``Job.obs_interval``), so plain runs never pay for or see it.
    intervals: Optional[Dict[str, object]] = None
    #: Write-attribution document (:meth:`repro.obs.profile.
    #: WriteHeatmap.to_dict`); populated by stream-tier runs with
    #: ``obs_interval`` set, ``None`` otherwise.
    heatmap: Optional[Dict[str, object]] = None
    #: Stall-attribution document (:meth:`repro.obs.profile.
    #: StallFlame.to_dict`); same population rule as ``heatmap``.
    flame: Optional[Dict[str, object]] = None
    #: How the run's observability was produced: ``"probe-bus"`` (taps
    #: on a live machine), ``"stream"`` (batch-derived from the op
    #: stream), or ``None`` when nothing was observed.
    obs_path: Optional[str] = None
    #: Why a ``tier="stream"`` request fell back to the machine path
    #: (:func:`stream_fallback_reason`); ``None`` when it did not.
    obs_fallback_reason: Optional[str] = None

    @property
    def total_writes(self) -> int:
        """In-window writes plus the end-of-window drain.

        At this reproduction's scale the dirty lines still resident
        when the window closes are a large fraction of a short run's
        traffic; counting their eventual writeback removes that
        window-boundary artifact (the paper's multi-second runs
        amortize it to nothing).  Write-amplification figures use this.
        """
        return self.nvmm_writes + self.drain_writes

    def summary_dict(self) -> Dict[str, object]:
        """Flat metric dict for reporting (CLI, logs)."""
        out: Dict[str, object] = {
            "exec_cycles": round(self.exec_cycles, 1),
            "nvmm_writes": self.nvmm_writes,
            "drain_writes": self.drain_writes,
            "nvmm_reads": self.nvmm_reads,
            "l2_miss_rate": round(self.l2_miss_rate, 4),
            "max_volatility_cycles": round(self.max_volatility_cycles, 1),
            "ops_executed": self.ops_executed,
            "verified": self.verified,
        }
        for name, count in sorted(self.hazards.items()):
            out[f"hazard_{name}"] = count
        return out

    def to_dict(self) -> Dict[str, object]:
        """Full, lossless field dump (the on-disk cache record body)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        Strict on shape: unknown or missing fields raise (``TypeError``
        / ``KeyError``), which the result cache treats as a corrupted
        entry and falls back to re-running the experiment.
        """
        names = {f.name for f in fields(cls)}
        extra = set(data) - names
        if extra:
            raise KeyError(f"unknown ExperimentResult fields: {sorted(extra)}")
        return cls(**data)

    def normalized_to(self, base: "ExperimentResult") -> Dict[str, float]:
        """Execution-time and write ratios vs a baseline run (how every
        number in Figures 10-15 is reported)."""
        return {
            "exec_time": self.exec_cycles / base.exec_cycles,
            "num_writes": (
                self.nvmm_writes / base.nvmm_writes
                if base.nvmm_writes
                else float("inf")
            ),
        }


def stream_fallback_reason(
    workload: Workload,
    config: MachineConfig,
    *,
    cleaner_period: Optional[float] = None,
    drain: bool = False,
    observers: Optional[Sequence[object]] = None,
) -> Optional[str]:
    """Why this point cannot take the op-stream tier, or ``None``.

    ``run_variant(..., tier="stream")`` consults this before routing:
    a non-``None`` reason means the request falls back to the machine
    path (with the reason surfaced on the result and warned about),
    never a silent downgrade.  The conditions mirror what the stream
    format can encode — value-deterministic, trigger-free replay runs
    — plus which observers :mod:`repro.obs.streamobs` can derive.
    """
    if not workload.stream_safe:
        return (
            f"workload {workload.name!r} declares stream_safe=False; "
            "its forward runs are not value-deterministic"
        )
    if cleaner_period is not None:
        return "cleaner_period is set; op streams encode trigger-free runs"
    if config.schedule_jitter:
        return (
            "config.schedule_jitter is nonzero; op streams encode the "
            "jitter-free replay schedule"
        )
    if drain:
        return (
            "drain=True needs the caching hierarchy; replay machines "
            "have none to drain"
        )
    if observers:
        from repro.obs import (
            IntervalSampler,
            StallFlame,
            TraceRecorder,
            WriteHeatmap,
        )

        derivable = (IntervalSampler, WriteHeatmap, StallFlame, TraceRecorder)
        for obs in observers:
            if not isinstance(obs, derivable):
                return (
                    f"observer {type(obs).__name__} has no stream "
                    "derivation (only IntervalSampler, WriteHeatmap, "
                    "StallFlame and TraceRecorder do)"
                )
    return None


def _run_stream_variant(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    num_threads: int,
    engine: str,
    verify: bool,
    obs_interval: Optional[float],
    observers: Optional[Sequence[object]],
    provenance: bool,
) -> ExperimentResult:
    """The ``tier="stream"`` body: record the point's op stream (one
    ordinary replay run — recording *is* the run) and batch-derive any
    requested observability from the stream instead of tapping probes.
    """
    from repro.sim.opstream import record_stream

    machine = Machine(config, _replay=True)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    if provenance:
        bound.provenance = True
    stream, result = record_stream(machine, bound.threads(variant))

    intervals = heatmap_doc = flame_doc = None
    want_obs = obs_interval is not None or bool(observers)
    if want_obs:
        from repro.obs import (
            IntervalSampler,
            StallFlame,
            TraceRecorder,
            WriteHeatmap,
        )
        from repro.obs.streamobs import (
            derive_flame,
            derive_heatmap,
            derive_recorder,
            derive_sampler,
        )

        if obs_interval is not None:
            intervals = derive_sampler(stream, obs_interval).series()
            heatmap_doc = derive_heatmap(stream, machine).to_dict()
            flame_doc = derive_flame(
                stream, root=f"{workload.name}/{variant}"
            ).to_dict()
        fresh = None  # pre-run image for load-result recovery
        for obs in observers or ():
            if isinstance(obs, IntervalSampler):
                derived = derive_sampler(stream, obs.interval)
                obs._sum.update(derived._sum)
            elif isinstance(obs, WriteHeatmap):
                derived = derive_heatmap(stream, machine)
                obs._line_stores = derived._line_stores
                obs._line_flushes = derived._line_flushes
                obs._region_bases = derived._region_bases
                obs._regions = derived._regions
            elif isinstance(obs, StallFlame):
                obs._stacks = derive_flame(stream, root=obs.root)._stacks
            elif isinstance(obs, TraceRecorder):
                if fresh is None:
                    # The recording machine's memory is post-run; load
                    # results must be recovered against the *initial*
                    # image, so bind the point once more.
                    fresh = Machine(config, _replay=True)
                    workload.bind(
                        fresh, num_threads=num_threads, engine=engine
                    )
                obs.ops.extend(derive_recorder(stream, fresh).ops)

    verified = bound.verify() if verify else True
    if verify and not verified:
        raise WorkloadError(
            f"{workload.name}/{variant} produced a wrong result; "
            f"max error {bound.verification_error()}"
        )
    return ExperimentResult(
        workload=workload.name,
        variant=variant,
        num_threads=num_threads,
        exec_cycles=result.exec_cycles,
        nvmm_writes=result.stats.nvmm_writes,
        drain_writes=0,
        nvmm_reads=result.stats.nvmm_reads,
        l2_miss_rate=result.stats.l2_miss_rate,
        max_volatility_cycles=result.stats.max_volatility_cycles,
        hazards=result.stats.hazard_totals(),
        writes_by_cause=dict(result.stats.writes_by_cause),
        verified=verified,
        ops_executed=result.ops_executed,
        cleaner_writes=result.stats.writes_by_cause.get("cleaner", 0),
        stalls=result.stats.stall_summary(),
        intervals=intervals,
        heatmap=heatmap_doc,
        flame=flame_doc,
        obs_path="stream" if want_obs else None,
    )


def run_variant(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    num_threads: int = 8,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    verify: bool = True,
    drain: bool = False,
    obs_interval: Optional[float] = None,
    observers: Optional[Sequence[object]] = None,
    provenance: bool = False,
    tier: str = "machine",
) -> ExperimentResult:
    """Run one variant start-to-finish and collect its metrics.

    ``obs_interval`` samples the run into an ``obs_interval``-cycle
    time series (the result's ``intervals`` field); ``observers`` taps
    arbitrary probe observers (e.g. a ``TraceRecorder``) into the run.
    Either one attaches the probe bus around the measured window only
    — the drain pass stays untraced so writeback event counts match
    the in-window ``nvmm_writes``.  Plain runs (both ``None``) never
    touch ``repro.obs``.  ``provenance`` opts the bound workload into
    emitting free :class:`~repro.sim.isa.Phase` frame ops, which stall
    profilers (:class:`repro.obs.profile.StallFlame`) fold into
    per-phase attribution; untagged runs are byte-identical to
    pre-provenance ones.

    ``tier="stream"`` routes the point through the op-stream tier: one
    recording replay run, with requested observability *derived* from
    the stream in batch (:mod:`repro.obs.streamobs`) instead of paying
    per-event probe callbacks — the result additionally carries
    ``heatmap``/``flame`` documents and ``obs_path="stream"``.  Stream
    runs report the replay tier's functional metrics (no caches, no
    stalls, no NVMM traffic), exactly like :meth:`Machine.run_stream
    <repro.sim.machine.Machine.run_stream>`.  Points the stream format
    cannot encode fall back to the machine path with a warning and the
    reason on ``obs_fallback_reason``
    (:func:`stream_fallback_reason`).
    """
    if tier not in ("machine", "stream"):
        raise ConfigError(
            f"unknown execution tier {tier!r} (machine|stream)"
        )
    workload.check_variant(variant)
    if num_threads > config.num_cores:
        raise WorkloadError(
            f"{num_threads} threads need at least {num_threads} cores, "
            f"config has {config.num_cores}"
        )
    fallback_reason = None
    if tier == "stream":
        fallback_reason = stream_fallback_reason(
            workload,
            config,
            cleaner_period=cleaner_period,
            drain=drain,
            observers=observers,
        )
        if fallback_reason is None:
            return _run_stream_variant(
                workload,
                config,
                variant,
                num_threads,
                engine,
                verify,
                obs_interval,
                observers,
                provenance,
            )
        warnings.warn(
            f"stream tier unavailable for {workload.name}/{variant}: "
            f"{fallback_reason}; taking the machine path",
            RuntimeWarning,
            stacklevel=2,
        )
    machine = Machine(config)
    if cleaner_period is not None:
        machine.cleaner = PeriodicCleaner(cleaner_period)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    if provenance:
        bound.provenance = True

    sampler = None
    if obs_interval is not None or observers:
        # Imported lazily: plain runs must not pay for (or depend on)
        # the observability package.
        from repro.obs import IntervalSampler, ProbeBus, attach_probes

        obs_list = list(observers or [])
        if obs_interval is not None:
            sampler = IntervalSampler(obs_interval)
            obs_list.append(sampler)
        attach_probes(machine, ProbeBus(obs_list))
    try:
        result = machine.run(bound.threads(variant))
    finally:
        if obs_interval is not None or observers:
            from repro.obs import detach_probes

            detach_probes(machine)
    exec_cycles = result.exec_cycles
    in_window_writes = result.stats.nvmm_writes
    drain_writes = machine.drain() if drain else 0

    verified = bound.verify() if verify else True
    if verify and not verified:
        raise WorkloadError(
            f"{workload.name}/{variant} produced a wrong result; "
            f"max error {bound.verification_error()}"
        )
    return ExperimentResult(
        workload=workload.name,
        variant=variant,
        num_threads=num_threads,
        exec_cycles=exec_cycles,
        nvmm_writes=in_window_writes,
        drain_writes=drain_writes,
        nvmm_reads=result.stats.nvmm_reads,
        l2_miss_rate=result.stats.l2_miss_rate,
        max_volatility_cycles=result.stats.max_volatility_cycles,
        hazards=result.stats.hazard_totals(),
        writes_by_cause=dict(result.stats.writes_by_cause),
        verified=verified,
        ops_executed=result.ops_executed,
        cleaner_writes=result.stats.writes_by_cause.get("cleaner", 0),
        stalls=result.stats.stall_summary(),
        intervals=sampler.series() if sampler is not None else None,
        obs_path=(
            "probe-bus"
            if (obs_interval is not None or observers)
            else None
        ),
        obs_fallback_reason=fallback_reason,
    )


def compare_variants(
    workload: Workload,
    config: MachineConfig,
    variants,
    num_threads: int = 8,
    engine: str = "modular",
    drain: bool = False,
    n_jobs: int = 1,
    cache=None,
    obs_interval: Optional[float] = None,
) -> Dict[str, ExperimentResult]:
    """Run several variants of one workload under identical conditions.

    ``n_jobs``/``cache`` fan the variants out through the parallel
    experiment engine (:mod:`repro.analysis.runner`); the defaults run
    serially with no on-disk cache, exactly like ``run_variant`` in a
    loop.
    """
    # Imported here: runner depends on this module.
    from repro.analysis.runner import Job, run_jobs

    jobs = [
        Job(
            workload,
            config,
            v,
            num_threads=num_threads,
            engine=engine,
            drain=drain,
            obs_interval=obs_interval,
        )
        for v in variants
    ]
    results = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return dict(zip(variants, results))
