"""Parallel experiment engine with an on-disk result cache.

Every paper figure is a fan-out of independent ``run_variant`` points:
each point is a pure function of (workload spec, machine config,
variant, threads, engine, cleaner period), so the engine can

* distribute points over a ``multiprocessing`` pool (``n_jobs > 1``)
  with spawn-safe job descriptors and ordered result collection, and
* memoize each point on disk under a content-addressed key, so
  re-running a sweep after an unrelated edit is a cache hit instead of
  a re-simulation.

The cache key hashes the full job description plus a digest of the
simulator-relevant source tree (:func:`code_version`), so editing
``repro/sim`` or a workload invalidates stale entries automatically
while editing benchmarks, docs, or the CLI does not.

Usage::

    jobs = [Job(workload, config, v) for v in ("base", "lp", "ep")]
    results = run_jobs(jobs, n_jobs=4, cache=ResultCache())

``n_jobs=1`` is the serial fallback: jobs run in-process, in order,
with no pool — bit-for-bit the same results as the parallel path.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult, run_variant
from repro.errors import ConfigError
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload

#: Bumped whenever the cache record layout changes.
CACHE_FORMAT_VERSION = 1

#: Subpackages of ``repro`` whose source feeds :func:`code_version`.
#: The CLI, reporting, and benchmark drivers are deliberately absent:
#: editing them cannot change a simulation's outcome, so sweeps stay
#: cached across such edits.
_VERSIONED_SUBTREES = (
    "sim",
    "core",
    "schemes",
    "workloads",
    "verify",
    "analysis/experiments.py",
)

_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Digest of the simulator-relevant source files.

    Any edit under ``repro/sim``, ``repro/core``, ``repro/workloads``,
    or to ``run_variant`` itself changes this digest and therefore
    every cache key; results produced by older code can never be
    served for newer code.
    """
    global _code_version_memo
    if _code_version_memo is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for sub in _VERSIONED_SUBTREES:
            path = os.path.join(root, sub)
            if os.path.isfile(path):
                files = [path]
            else:
                files = sorted(
                    os.path.join(dirpath, name)
                    for dirpath, _, names in os.walk(path)
                    for name in names
                    if name.endswith(".py")
                )
            for fname in files:
                digest.update(os.path.relpath(fname, root).encode())
                with open(fname, "rb") as fh:
                    digest.update(fh.read())
        _code_version_memo = digest.hexdigest()
    return _code_version_memo


def workload_spec(workload: Workload) -> Dict[str, object]:
    """Canonical description of a workload instance.

    Workloads hold only scalar problem parameters (sizes, seeds, mode
    strings), so their ``vars()`` is a complete, JSON-safe spec.
    """
    spec: Dict[str, object] = {"__class__": type(workload).__qualname__,
                               "__name__": workload.name}
    for key, value in sorted(vars(workload).items()):
        if not isinstance(value, (int, float, str, bool, type(None))):
            raise ConfigError(
                f"workload {workload.name!r} attribute {key!r} is not a "
                f"scalar ({type(value).__name__}); cannot build a stable "
                "cache key"
            )
        spec[key] = value
    return spec


def workload_from_spec(spec: Dict[str, object]) -> Workload:
    """Rebuild a workload instance from a :func:`workload_spec` dict.

    The spec records every instance attribute, including derived ones
    (e.g. a tile count computed from ``n`` and ``bsize``), so only the
    keys naming actual constructor parameters are passed back; the
    constructor re-derives the rest.  This is how the regression
    sentinel re-runs exactly the workload a committed baseline
    measured (:mod:`repro.obs.baseline`).
    """
    import inspect

    from repro.workloads import get_workload

    name = spec.get("__name__")
    if not isinstance(name, str):
        raise ConfigError(f"workload spec lacks a __name__: {spec!r}")
    cls = get_workload(name)
    accepted = set(inspect.signature(cls.__init__).parameters) - {"self"}
    kwargs = {
        key: value
        for key, value in spec.items()
        if not key.startswith("__") and key in accepted
    }
    workload = cls(**kwargs)
    rebuilt = workload_spec(workload)
    if rebuilt != spec:
        raise ConfigError(
            f"workload spec round-trip mismatch for {name!r}: "
            f"stored {spec!r}, rebuilt {rebuilt!r} — the workload's "
            "parameters have changed incompatibly"
        )
    return workload


@dataclass(frozen=True)
class Job:
    """Spawn-safe descriptor of one ``run_variant`` point.

    Carries only picklable state (the workload's scalar parameters,
    the frozen config dataclasses, strings and numbers), so it crosses
    a ``spawn`` process boundary unchanged.
    """

    workload: Workload
    config: MachineConfig
    variant: str
    num_threads: int = 8
    engine: str = "modular"
    cleaner_period: Optional[float] = None
    verify: bool = True
    drain: bool = False
    #: Interval-sampling window in cycles (``None`` = no observability).
    #: Part of the cache key when set, so sampled results live under
    #: distinct keys and can never be served to (or poison) plain runs.
    obs_interval: Optional[float] = None
    #: Provenance tagging (free Phase frame ops for stall attribution).
    #: Same keying discipline as ``obs_interval``: in the key only when
    #: on, so untagged jobs keep their pre-provenance keys.
    provenance: bool = False
    #: Execution tier: ``"machine"`` (default, the full scheduling
    #: machine) or ``"stream"`` (record + replay through the op-stream
    #: interpreter with batch-derived observability where eligible).
    #: In the key only when non-default, so existing keys are stable.
    tier: str = "machine"

    def cache_key(self) -> str:
        """Content-addressed identity of this job's result."""
        payload = {
            "workload": workload_spec(self.workload),
            "config": self.config.cache_key(),
            "variant": self.variant,
            "num_threads": self.num_threads,
            "engine": self.engine,
            "cleaner_period": self.cleaner_period,
            "verify": self.verify,
            "drain": self.drain,
            "code": code_version(),
            "format": CACHE_FORMAT_VERSION,
        }
        # Only present when sampling, so every pre-observability key
        # (and any plain run's key) is byte-identical to before.
        if self.obs_interval is not None:
            payload["obs_interval"] = self.obs_interval
        if self.provenance:
            payload["provenance"] = True
        if self.tier != "machine":
            payload["tier"] = self.tier
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()

    def run(self) -> ExperimentResult:
        """Execute the point (no cache), with deterministic seeding.

        The simulator draws randomness only from seeds inside the job
        description (workload seed, ``schedule_seed``), but the global
        RNGs are reseeded from the cache key anyway so any future
        stray ``random``/``numpy`` call stays reproducible per job.
        """
        seed = int(self.cache_key()[:16], 16)
        random.seed(seed)
        try:
            import numpy as np

            np.random.seed(seed % (2**32))
        except ImportError:  # pragma: no cover - numpy is a hard dep
            pass
        return run_variant(
            self.workload,
            self.config,
            self.variant,
            num_threads=self.num_threads,
            engine=self.engine,
            cleaner_period=self.cleaner_period,
            verify=self.verify,
            drain=self.drain,
            obs_interval=self.obs_interval,
            provenance=self.provenance,
            tier=self.tier,
        )


@dataclass(frozen=True)
class CrashCheckJob:
    """Spawn-safe descriptor of one crash-state checking campaign:
    one (workload, variant) checked across a set of crash plans.

    Same engine protocol as :class:`Job` — ``cache_key()`` + ``run()``
    — so ``run_jobs`` fans crashcheck campaigns over the pool and the
    on-disk cache exactly like experiment points (pass
    ``decode=CrashCheckReport.from_dict`` when a cache is used).
    """

    workload: Workload
    config: MachineConfig
    variant: str
    #: Crash triggers in ``repro.verify.plan_to_dict`` form (JSON-safe
    #: and spawn-safe; rebuilt into CrashPlans inside the worker).
    crash_plans: Tuple[Dict[str, float], ...]
    max_exhaustive_events: int = 12
    samples: int = 64
    seed: int = 0
    num_threads: int = 2
    engine: str = "modular"
    cleaner_period: Optional[float] = None
    #: Per-image recovery on replay machines (exact and much faster;
    #: False restores full-machine recovery runs for benchmarking).
    replay: bool = True
    #: Streaming-observability plumbing: an append-only JSONL journal
    #: the worker writes ``campaign_point`` events to, and/or stderr
    #: progress ticks.  Neither changes the campaign's outcome, so
    #: neither appears in ``cache_key()`` — a journaled run and a
    #: silent run share one cache entry.
    journal_path: Optional[str] = None
    progress: bool = False

    def cache_key(self) -> str:
        """Content-addressed identity of this campaign's report.

        The timing model is part of ``config.cache_key()``, so routing
        a campaign through ``FastFunctional`` never reuses detailed
        results (the reachable spaces differ under multicore
        interleaving).
        """
        payload = json.dumps(
            {
                "kind": "crashcheck",
                "workload": workload_spec(self.workload),
                "config": self.config.cache_key(),
                "variant": self.variant,
                "crash_plans": list(self.crash_plans),
                "max_exhaustive_events": self.max_exhaustive_events,
                "samples": self.samples,
                "seed": self.seed,
                "num_threads": self.num_threads,
                "engine": self.engine,
                "cleaner_period": self.cleaner_period,
                "replay": self.replay,
                "code": code_version(),
                "format": CACHE_FORMAT_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def run(self):
        """Execute the campaign (no cache); returns a CrashCheckReport."""
        from repro.verify import (
            EnumerationPlan,
            check_variant,
            plan_from_dict,
        )

        seed = int(self.cache_key()[:16], 16)
        random.seed(seed)
        try:
            import numpy as np

            np.random.seed(seed % (2**32))
        except ImportError:  # pragma: no cover - numpy is a hard dep
            pass
        journal = None
        if self.journal_path is not None or self.progress:
            # Imported lazily: silent campaigns never load the obs
            # package inside pool workers.
            from repro.obs.journal import TelemetryJournal

            journal = TelemetryJournal(
                path=self.journal_path, progress=self.progress
            )
        return check_variant(
            self.workload,
            self.config,
            self.variant,
            [plan_from_dict(d) for d in self.crash_plans],
            EnumerationPlan(
                max_exhaustive_events=self.max_exhaustive_events,
                samples=self.samples,
                seed=self.seed,
            ),
            num_threads=self.num_threads,
            engine=self.engine,
            cleaner_period=self.cleaner_period,
            replay=self.replay,
            journal=journal,
        )


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-lazy-persistency``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-lazy-persistency")


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (manifests, telemetry, CLI summaries)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def summary(self) -> str:
        """One-line human summary: ``3/7 hits (42.9%)``."""
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({100.0 * self.hit_rate():.1f}%)"
        )


@dataclass
class RunTelemetry:
    """Harness-level telemetry for one or more :func:`run_jobs` batches.

    Records what the *harness* did — not what the simulator measured:
    one span per job (queue-to-finish wall clock, cache hit or full
    run), the worker count, total batch wall clock, and a snapshot of
    the cache's hit/miss counters.  Collected by passing an instance to
    ``run_jobs(..., telemetry=...)`` or ambiently via
    :func:`collect_telemetry`; rendered by ``repro dashboard``.

    Spans are plain dicts (JSON-safe)::

        {"label": "tmm/lp", "status": "run" | "hit",
         "start_s": 0.0, "end_s": 1.7, "wall_s": 1.7}

    ``start_s``/``end_s`` are offsets from the first batch's start, on
    the shared wall clock, so pool workers' spans line up on one
    timeline.
    """

    workers: int = 1
    wall_clock_s: float = 0.0
    spans: List[Dict[str, object]] = field(default_factory=list)
    cache: Optional[Dict[str, object]] = None
    #: Optional streaming sink (``emit(kind, **fields)``, e.g. a
    #: :class:`repro.obs.journal.TelemetryJournal`): every recorded
    #: span is also emitted as a ``job_span`` event, and each batch's
    #: summary as a ``batch`` event, while the run is still going.
    journal: Optional[object] = field(default=None, repr=False, compare=False)
    _epoch: Optional[float] = field(default=None, repr=False, compare=False)

    def record_span(self, span: Dict[str, object]) -> None:
        """Append one job span, streaming it to the journal if any."""
        self.spans.append(span)
        if self.journal is not None:
            self.journal.emit("job_span", workers=self.workers, **span)

    def record_batch(self) -> None:
        """Stream the current batch summary to the journal if any."""
        if self.journal is not None:
            self.journal.emit("batch", **self.summary())

    def busy_s(self) -> float:
        """Total span wall clock (summed over workers)."""
        return sum(float(span.get("wall_s", 0.0)) for span in self.spans)

    def utilization(self) -> float:
        """Busy fraction of the worker pool over the batch wall clock."""
        capacity = self.workers * self.wall_clock_s
        return self.busy_s() / capacity if capacity > 0 else 0.0

    def counts(self) -> Dict[str, int]:
        out = {"jobs": len(self.spans), "hits": 0, "runs": 0}
        for span in self.spans:
            if span.get("status") == "hit":
                out["hits"] += 1
            else:
                out["runs"] += 1
        return out

    def summary(self) -> Dict[str, object]:
        """Flat headline dict (CLI output, report manifests)."""
        out: Dict[str, object] = dict(self.counts())
        out["workers"] = self.workers
        out["wall_clock_s"] = round(self.wall_clock_s, 4)
        out["busy_s"] = round(self.busy_s(), 4)
        out["utilization"] = round(self.utilization(), 4)
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe document (``repro sweep --telemetry-out``)."""
        return {
            "workers": self.workers,
            "wall_clock_s": round(self.wall_clock_s, 6),
            "spans": [dict(span) for span in self.spans],
            "cache": dict(self.cache) if self.cache is not None else None,
            "summary": self.summary(),
        }


#: Ambient telemetry sink installed by :func:`collect_telemetry` —
#: lets the CLI collect spans across call chains (sweeps, compares)
#: whose intermediate layers do not thread a telemetry argument.
_ACTIVE_TELEMETRY: Optional[RunTelemetry] = None


@contextlib.contextmanager
def collect_telemetry(
    telemetry: Optional[RunTelemetry] = None,
) -> Iterator[RunTelemetry]:
    """Collect telemetry from every :func:`run_jobs` call in the block.

    Yields the collecting :class:`RunTelemetry` (a fresh one unless
    passed in).  Batches accumulate: spans append, wall clocks sum,
    ``workers`` keeps the maximum.
    """
    global _ACTIVE_TELEMETRY
    sink = telemetry if telemetry is not None else RunTelemetry()
    previous = _ACTIVE_TELEMETRY
    _ACTIVE_TELEMETRY = sink
    try:
        yield sink
    finally:
        _ACTIVE_TELEMETRY = previous


class ResultCache:
    """Content-addressed on-disk store of :class:`ExperimentResult`.

    One JSON file per result, named by the job's cache key and fanned
    into 256 two-hex-digit subdirectories.  Writes are atomic (temp
    file + rename), so a crashed or concurrent writer can at worst
    leave a stale temp file, never a torn record.  Unreadable or
    malformed entries are treated as misses and deleted — the engine
    falls back to re-running the job.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str, decode=None) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or None on miss/corruption.

        ``decode`` rebuilds the result object from its stored dict;
        the default is :meth:`ExperimentResult.from_dict`.  Crashcheck
        campaigns pass ``CrashCheckReport.from_dict``.  A record that
        the decoder rejects counts as corruption (miss + delete), so a
        key collision across record kinds can never serve the wrong
        type.
        """
        if decode is None:
            decode = ExperimentResult.from_dict
        path = self._path(key)
        try:
            with open(path, "r") as fh:
                record = json.load(fh)
            if record["format"] != CACHE_FORMAT_VERSION or record["key"] != key:
                raise ValueError("cache record does not match its key")
            result = decode(record["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: ExperimentResult) -> None:
        """Atomically persist ``result`` under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- binary sidecar blobs (pre-decoded op streams) -------------------

    def _blob_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".npz")

    def get_blob(self, key: str):
        """The cached op stream for ``key``, or None on miss/corruption.

        Same contract as :meth:`get`, for the ``.npz`` sidecar blobs
        :func:`cached_op_stream` stores next to the JSON records: any
        unreadable, malformed, or format-mismatched blob counts as a
        corrupt miss and is deleted.
        """
        from repro.sim.opstream import load_stream

        path = self._blob_path(key)
        try:
            stream = load_stream(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, OSError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return stream

    def put_blob(self, key: str, stream) -> None:
        """Atomically persist an op stream under ``key``."""
        from repro.sim.opstream import save_stream

        path = self._blob_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".npz"
        )
        os.close(fd)
        try:
            save_stream(stream, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cached entry (records and stream blobs);
        returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _, names in os.walk(self.root):
            for name in names:
                if name.endswith(".json") or name.endswith(".npz"):
                    os.remove(os.path.join(dirpath, name))
                    removed += 1
        return removed


def stream_cache_key(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    num_threads: int,
    engine: str,
) -> str:
    """Content-addressed identity of one forward point's op stream.

    Same keying discipline as :meth:`Job.cache_key`: the full point
    description plus :func:`code_version`, so editing the simulator or
    a workload invalidates every stale stream, plus the stream format
    version so layout changes can never misparse old blobs.
    """
    from repro.sim.opstream import STREAM_FORMAT_VERSION

    payload = {
        "kind": "opstream",
        "workload": workload_spec(workload),
        "config": config.cache_key(),
        "variant": variant,
        "num_threads": num_threads,
        "engine": engine,
        "code": code_version(),
        "format": CACHE_FORMAT_VERSION,
        "stream_format": STREAM_FORMAT_VERSION,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def cached_op_stream(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    num_threads: int = 8,
    engine: str = "modular",
    cache: Optional[ResultCache] = None,
):
    """The pre-decoded op stream for one forward point: load it from
    the cache, or record it once (one ordinary replay run) and store it.

    Returns a :class:`repro.sim.opstream.OpStream` ready for
    :meth:`Machine.run_stream <repro.sim.machine.Machine.run_stream>`.
    Streams are only valid for value-deterministic forward runs —
    workloads advertising ``stream_safe = False`` are refused —
    and only encode the trigger-free replay schedule (crash and
    recovery runs always take the generator paths).
    """
    from repro.sim.machine import Machine
    from repro.sim.opstream import record_stream

    if not workload.stream_safe:
        raise ConfigError(
            f"workload {workload.name!r} declares stream_safe=False; "
            "its forward runs cannot be replayed from a recorded stream"
        )
    key = stream_cache_key(workload, config, variant, num_threads, engine)
    if cache is not None:
        stream = cache.get_blob(key)
        if stream is not None:
            return stream
    machine = Machine(config, _replay=True)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    stream, _ = record_stream(machine, bound.threads(variant))
    if cache is not None:
        cache.put_blob(key, stream)
    return stream


def _job_label(job: object) -> str:
    """Human span label for any ``cache_key()``/``run()`` job."""
    workload = getattr(job, "workload", None)
    name = getattr(workload, "name", None) or type(job).__name__
    variant = getattr(job, "variant", None)
    return f"{name}/{variant}" if variant else str(name)


def _execute_indexed(
    payload: Tuple[int, Job]
) -> Tuple[int, ExperimentResult, float, float]:
    """Pool worker: run one job, tagged with its submission index and
    its start/end wall-clock timestamps (``time.time()``, comparable
    across processes on one host)."""
    index, job = payload
    start = time.time()
    result = job.run()
    return index, result, start, time.time()


def run_jobs(
    jobs: Sequence[Job],
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    mp_context: str = "spawn",
    decode=None,
    telemetry: Optional[RunTelemetry] = None,
) -> List[ExperimentResult]:
    """Run experiment points, in parallel, through the result cache.

    Results come back in submission order regardless of completion
    order.  ``cache=None`` disables the on-disk cache entirely;
    ``n_jobs=1`` runs serially in-process (identical results, no pool).
    Duplicate jobs in one batch are simulated once.

    Any job type implementing the ``cache_key()``/``run()`` protocol
    works (:class:`Job`, :class:`CrashCheckJob`); its result must offer
    ``to_dict()`` when a cache is used, and ``decode`` must be the
    matching ``from_dict`` (defaults to ExperimentResult's).

    ``telemetry`` (or an ambient :func:`collect_telemetry` sink)
    receives one span per job — cache hits included — plus worker
    count, batch wall clock, and a cache-stats snapshot.
    """
    if n_jobs < 1:
        raise ConfigError(f"n_jobs must be >= 1, got {n_jobs}")
    if telemetry is None:
        telemetry = _ACTIVE_TELEMETRY
    batch_start = time.time()
    if telemetry is not None and telemetry._epoch is None:
        telemetry._epoch = batch_start
    epoch = (
        telemetry._epoch if telemetry is not None else batch_start
    )
    results: List[Optional[ExperimentResult]] = [None] * len(jobs)

    # Cache probe; collect misses, collapsing duplicate keys.
    pending: Dict[str, List[int]] = {}
    pending_jobs: List[Job] = []
    for index, job in enumerate(jobs):
        key = job.cache_key()
        if cache is not None and key not in pending:
            probe_start = time.time()
            hit = cache.get(key, decode=decode)
            if hit is not None:
                results[index] = hit
                if telemetry is not None:
                    telemetry.record_span({
                        "label": _job_label(job),
                        "status": "hit",
                        "start_s": round(probe_start - epoch, 6),
                        "end_s": round(time.time() - epoch, 6),
                        "wall_s": round(time.time() - probe_start, 6),
                    })
                continue
        if key in pending:
            pending[key].append(index)
        else:
            pending[key] = [index]
            pending_jobs.append(job)

    # Run the misses.
    workers = 1
    if pending_jobs:
        if n_jobs == 1 or len(pending_jobs) == 1:
            finished = []
            for i, job in enumerate(pending_jobs):
                start = time.time()
                result = job.run()
                finished.append((i, result, start, time.time()))
        else:
            ctx = multiprocessing.get_context(mp_context)
            workers = min(n_jobs, len(pending_jobs))
            with ctx.Pool(processes=workers) as pool:
                finished = list(
                    pool.imap_unordered(
                        _execute_indexed, enumerate(pending_jobs)
                    )
                )
        keys = list(pending)
        for pending_index, result, start, end in finished:
            key = keys[pending_index]
            if cache is not None:
                cache.put(key, result)
            if telemetry is not None:
                telemetry.record_span({
                    "label": _job_label(pending_jobs[pending_index]),
                    "status": "run",
                    "start_s": round(start - epoch, 6),
                    "end_s": round(end - epoch, 6),
                    "wall_s": round(end - start, 6),
                })
            for index in pending[key]:
                results[index] = result

    if telemetry is not None:
        telemetry.workers = max(telemetry.workers, workers)
        telemetry.wall_clock_s += time.time() - batch_start
        if cache is not None:
            telemetry.cache = cache.stats.to_dict()
        telemetry.record_batch()

    return [r for r in results if r is not None]


def run_variant_cached(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    cache: Optional[ResultCache] = None,
    **kwargs,
) -> ExperimentResult:
    """One-point convenience wrapper: ``run_variant`` through the cache."""
    (result,) = run_jobs(
        [Job(workload, config, variant, **kwargs)], n_jobs=1, cache=cache
    )
    return result
