"""Crash/recovery campaigns: inject failures across a run, recover,
and verify — the experimental backbone for LP's failure-safety claim.

The paper evaluates performance (failures are rare); this module is the
reproduction's way of *demonstrating* the correctness half: for a grid
of crash points, Lazy Persistency recovery must reconstruct the exact
failure-free output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.base import Workload


@dataclass
class CrashTrial:
    crash_at_op: int
    crashed: bool
    recovered_ok: bool
    writes_before_crash: int
    recovery_ops: int
    recovery_cycles: float


@dataclass
class CrashCampaignResult:
    workload: str
    trials: List[CrashTrial] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        # Non-crashed trials (workload finished before the trigger)
        # must verify too: a graceful run with wrong output is a bug,
        # not a pass.
        return all(t.recovered_ok for t in self.trials)

    @property
    def crashes(self) -> int:
        return sum(1 for t in self.trials if t.crashed)

    def mean_recovery_ops(self) -> float:
        """Average recovery ops across the crashed trials."""
        crashed = [t for t in self.trials if t.crashed]
        if not crashed:
            return 0.0
        return sum(t.recovery_ops for t in crashed) / len(crashed)

    def coverage(self):
        """This campaign's :class:`~repro.obs.coverage.CoverageStats`:
        one schedule image checked per trial (the single-image path),
        so total images equal the trial count."""
        from repro.obs.coverage import coverage_of_campaign

        return coverage_of_campaign(self)


def run_crash_campaign(
    workload: Workload,
    config: MachineConfig,
    crash_points: List[int],
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    variant: str = "lp",
) -> CrashCampaignResult:
    """Crash a run at each op count, recover, verify exactness.

    Recovery uses the variant's own procedure
    (:meth:`BoundWorkload.recovery_threads_for`), so the campaign
    exercises eager-marker and WAL recovery as faithfully as LP's.
    """
    campaign = CrashCampaignResult(workload=workload.name)
    for at_op in crash_points:
        machine = Machine(config)
        if cleaner_period is not None:
            machine.cleaner = PeriodicCleaner(cleaner_period)
        bound = workload.bind(machine, num_threads=num_threads, engine=engine)
        result, post = run_with_crash(
            machine, bound.threads(variant), CrashPlan(at_op=at_op)
        )
        if not result.crashed:
            # workload finished first: nothing to recover, still verify
            campaign.trials.append(
                CrashTrial(at_op, False, bound.verify(), result.nvmm_writes, 0, 0.0)
            )
            continue
        rebound = workload.bind(
            post, num_threads=num_threads, engine=engine, create=False
        )
        rres = post.run(rebound.recovery_threads_for(variant))
        campaign.trials.append(
            CrashTrial(
                crash_at_op=at_op,
                crashed=True,
                recovered_ok=rebound.verify(),
                writes_before_crash=result.nvmm_writes,
                recovery_ops=rres.ops_executed,
                recovery_cycles=rres.exec_cycles,
            )
        )
    return campaign


# ----------------------------------------------------------------------
# crash-state checking campaigns (see repro.verify)
# ----------------------------------------------------------------------


def crash_plans_for(
    workload: Workload,
    config: MachineConfig,
    variant: str,
    op_points: int = 8,
    max_flush_points: Optional[int] = 32,
    num_threads: int = 2,
    engine: str = "modular",
) -> List[CrashPlan]:
    """Crash triggers worth checking for one variant.

    One profiling run (to completion, no crash) sizes the grid; the
    plans are then an even ``at_op`` spread over the whole run plus
    ``at_flush`` persist boundaries — right after each flush issues,
    before any fence orders it, where the reachable-image set is
    widest and missing-fence bugs live.  ``max_flush_points`` evenly
    subsamples the boundaries when the run flushes more often than
    that (None keeps them all).
    """
    machine = Machine(config)
    bound = workload.bind(machine, num_threads=num_threads, engine=engine)
    profile = machine.run(bound.threads(variant))

    plans: List[CrashPlan] = []
    if op_points > 0 and profile.ops_executed > 1:
        step = max(1, profile.ops_executed // (op_points + 1))
        ops = range(step, profile.ops_executed, step)
        plans.extend(CrashPlan(at_op=o) for o in list(ops)[:op_points])

    n_flushes = profile.flush_ops
    if n_flushes:
        if max_flush_points is None or n_flushes <= max_flush_points:
            boundaries: Sequence[int] = range(1, n_flushes + 1)
        else:
            boundaries = sorted(
                {
                    max(1, round(i * n_flushes / max_flush_points))
                    for i in range(1, max_flush_points + 1)
                }
            )
        plans.extend(CrashPlan(at_flush=n) for n in boundaries)
    return plans


def run_crashcheck_campaign(
    workload: Workload,
    config: MachineConfig,
    variants: Sequence[str],
    op_points: int = 8,
    max_flush_points: Optional[int] = 32,
    max_exhaustive_events: int = 12,
    samples: int = 64,
    seed: int = 0,
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
    n_jobs: int = 1,
    cache=None,
    timing: Optional[str] = None,
    replay: bool = True,
    journal_path: Optional[str] = None,
    progress: bool = False,
):
    """Crash-state checking across variants, through the PR-1 engine.

    Builds one :class:`~repro.analysis.runner.CrashCheckJob` per
    variant (each spanning that variant's whole crash-point grid) and
    fans them through :func:`~repro.analysis.runner.run_jobs`, so
    campaigns parallelise and memoize exactly like experiment sweeps.
    Returns ``{variant: CrashCheckReport}`` in input order.

    ``timing`` overrides the config's timing model for the whole
    campaign (profiling runs, crash-point runs and cache keys stay
    consistent); the detailed default keeps crash-state spaces
    identical to pre-pipeline campaigns, while ``"functional"``
    explores the wider round-robin interleaving.  ``replay`` selects
    per-image recovery on replay machines — exact for the recovery
    verdict and the campaign's hot path; ``False`` restores
    full-machine recovery runs (benchmarking / belt-and-suspenders).

    ``journal_path``/``progress`` stream per-crash-point
    ``campaign_point`` events from the workers (a shared append-only
    JSONL file / stderr ticks); both are deliberately *not* part of
    the job cache key, so journaled campaigns hit the same cache
    entries as silent ones.  Cached variants emit no point events —
    their spans still reach the journal via ``run_jobs`` telemetry.
    """
    from repro.analysis.runner import CrashCheckJob, run_jobs
    from repro.verify import CrashCheckReport, plan_to_dict

    if timing is not None:
        config = config.with_timing(timing)
    jobs = []
    for variant in variants:
        plans = crash_plans_for(
            workload,
            config,
            variant,
            op_points=op_points,
            max_flush_points=max_flush_points,
            num_threads=num_threads,
            engine=engine,
        )
        jobs.append(
            CrashCheckJob(
                workload=workload,
                config=config,
                variant=variant,
                crash_plans=tuple(plan_to_dict(p) for p in plans),
                max_exhaustive_events=max_exhaustive_events,
                samples=samples,
                seed=seed,
                num_threads=num_threads,
                engine=engine,
                cleaner_period=cleaner_period,
                replay=replay,
                journal_path=journal_path,
                progress=progress,
            )
        )
    reports = run_jobs(
        jobs, n_jobs=n_jobs, cache=cache, decode=CrashCheckReport.from_dict
    )
    return dict(zip(variants, reports))
