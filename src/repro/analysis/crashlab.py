"""Crash/recovery campaigns: inject failures across a run, recover,
and verify — the experimental backbone for LP's failure-safety claim.

The paper evaluates performance (failures are rare); this module is the
reproduction's way of *demonstrating* the correctness half: for a grid
of crash points, Lazy Persistency recovery must reconstruct the exact
failure-free output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.cleaner import PeriodicCleaner
from repro.sim.config import MachineConfig
from repro.sim.crash import CrashPlan, run_with_crash
from repro.sim.machine import Machine
from repro.workloads.base import Workload


@dataclass
class CrashTrial:
    crash_at_op: int
    crashed: bool
    recovered_ok: bool
    writes_before_crash: int
    recovery_ops: int
    recovery_cycles: float


@dataclass
class CrashCampaignResult:
    workload: str
    trials: List[CrashTrial] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return all(t.recovered_ok for t in self.trials if t.crashed)

    @property
    def crashes(self) -> int:
        return sum(1 for t in self.trials if t.crashed)

    def mean_recovery_ops(self) -> float:
        """Average recovery ops across the crashed trials."""
        crashed = [t for t in self.trials if t.crashed]
        if not crashed:
            return 0.0
        return sum(t.recovery_ops for t in crashed) / len(crashed)


def run_crash_campaign(
    workload: Workload,
    config: MachineConfig,
    crash_points: List[int],
    num_threads: int = 2,
    engine: str = "modular",
    cleaner_period: Optional[float] = None,
) -> CrashCampaignResult:
    """Crash an LP run at each op count, recover, verify exactness."""
    campaign = CrashCampaignResult(workload=workload.name)
    for at_op in crash_points:
        machine = Machine(config)
        if cleaner_period is not None:
            machine.cleaner = PeriodicCleaner(cleaner_period)
        bound = workload.bind(machine, num_threads=num_threads, engine=engine)
        result, post = run_with_crash(
            machine, bound.threads("lp"), CrashPlan(at_op=at_op)
        )
        if not result.crashed:
            # workload finished first: nothing to recover, still verify
            campaign.trials.append(
                CrashTrial(at_op, False, bound.verify(), result.nvmm_writes, 0, 0.0)
            )
            continue
        rebound = workload.bind(
            post, num_threads=num_threads, engine=engine, create=False
        )
        rres = post.run(rebound.recovery_threads())
        campaign.trials.append(
            CrashTrial(
                crash_at_op=at_op,
                crashed=True,
                recovered_ok=rebound.verify(),
                writes_before_crash=result.nvmm_writes,
                recovery_ops=rres.ops_executed,
                recovery_cycles=rres.exec_cycles,
            )
        )
    return campaign
