"""Formatting helpers: print results the way the paper's tables do."""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Sequence


def normalize(value: float, base: float) -> float:
    """value / base with a guard for empty baselines."""
    if base == 0:
        return float("inf") if value else 1.0
    return value / base


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (how the paper averages normalized overheads)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A plain monospace table, stable for diffing in bench output."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """The same table as GitHub-flavored markdown (``repro report --md``)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def paper_vs_measured(
    rows: Mapping[str, tuple],
    metric: str,
) -> str:
    """Table of (scheme -> (paper value, measured value)) pairs."""
    table_rows = [
        [name, paper, measured, normalize(measured, paper)]
        for name, (paper, measured) in rows.items()
    ]
    return format_table(
        ["scheme", f"paper {metric}", f"measured {metric}", "ratio"],
        table_rows,
    )
