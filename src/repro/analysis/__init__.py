"""Experiment harness: run workload variants, sweep parameters, and
format results the way the paper's tables and figures report them."""

from repro.analysis.experiments import ExperimentResult, compare_variants, run_variant
from repro.analysis.reporting import format_table, geomean, normalize
from repro.analysis.crashlab import CrashCampaignResult, run_crash_campaign
from repro.analysis.sweep import (
    sweep_checksum,
    sweep_cleaner_period,
    sweep_l2_size,
    sweep_nvmm_latency,
    sweep_threads,
)

__all__ = [
    "ExperimentResult",
    "compare_variants",
    "run_variant",
    "format_table",
    "geomean",
    "normalize",
    "CrashCampaignResult",
    "run_crash_campaign",
    "sweep_checksum",
    "sweep_cleaner_period",
    "sweep_l2_size",
    "sweep_nvmm_latency",
    "sweep_threads",
]
