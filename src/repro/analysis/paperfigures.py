"""One-command paper reproduction: ``python -m repro reproduce``.

Runs compact versions of the paper's headline experiments and emits a
single markdown report.  The full-scale, per-figure harness lives in
``benchmarks/`` (one bench per table/figure, with shape assertions);
this module is the user-facing facade for a quick end-to-end check.

Scales:

* ``smoke`` — TMM-only, ~15 seconds.  Used by the test suite.
* ``quick`` — all five kernels at reduced size, a few minutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.experiments import compare_variants
from repro.analysis.runner import Job, run_jobs
from repro.analysis.crashlab import run_crash_campaign
from repro.analysis.reporting import format_table, geomean
from repro.core.accuracy import run_error_injection
from repro.core.checksum import available_engines, get_engine
from repro.errors import ConfigError
from repro.sim.config import MachineConfig, scaled_machine
from repro.workloads import get_workload

_SCALES: Dict[str, dict] = {
    "smoke": dict(
        threads=2,
        workloads={"tmm": dict(n=24, bsize=8)},
        accuracy_trials=500,
        crash_points=[2_000],
    ),
    "quick": dict(
        threads=4,
        workloads={
            "tmm": dict(n=48, bsize=8, kk_tiles=3),
            "cholesky": dict(n=32, col_block=8),
            "conv2d": dict(n=34, ksize=3, row_block=8),
            "gauss": dict(n=32, row_block=8, pivots=6),
            "fft": dict(n=512),
        },
        accuracy_trials=5_000,
        crash_points=[5_000, 40_000],
    ),
}


def _config(threads: int) -> MachineConfig:
    return scaled_machine(num_cores=threads + 1)


def _scheme_section(
    scale: dict, n_jobs: int = 1, obs_interval: Optional[float] = None
) -> str:
    """Figure 10 flavour: all TMM schemes, normalized."""
    cfg = _config(scale["threads"])
    wl = get_workload("tmm")(**scale["workloads"]["tmm"])
    results = compare_variants(
        wl, cfg, list(wl.variants), num_threads=scale["threads"], drain=True,
        n_jobs=n_jobs, obs_interval=obs_interval,
    )
    base = results["base"]
    rows = []
    for name in wl.variants:
        r = results[name]
        rows.append(
            [
                name,
                round(r.exec_cycles / base.exec_cycles, 3),
                round(r.total_writes / base.total_writes, 3)
                if base.total_writes
                else "-",
            ]
        )
    return format_table(
        ["scheme", "exec (vs base)", "writes (vs base)"],
        rows,
        title="TMM schemes (paper Figure 10: LP ~1.00, EP 1.12/1.36, WAL 5.97/3.83)",
    )


def _kernels_section(
    scale: dict, n_jobs: int = 1, obs_interval: Optional[float] = None
) -> str:
    """Figures 12/13 flavour: LP vs EP across kernels.

    All (kernel, variant) points are independent, so the whole grid is
    submitted to the engine as one batch.
    """
    cfg = _config(scale["threads"])
    variants = ["base", "lp", "ep"]
    names = list(scale["workloads"])
    jobs = [
        Job(
            get_workload(name)(**params),
            cfg,
            v,
            num_threads=scale["threads"],
            drain=True,
            obs_interval=obs_interval,
        )
        for name, params in scale["workloads"].items()
        for v in variants
    ]
    flat = iter(run_jobs(jobs, n_jobs=n_jobs))
    grid = {name: {v: next(flat) for v in variants} for name in names}
    rows = []
    lp_ratios: List[float] = []
    ep_ratios: List[float] = []
    for name in names:
        results = grid[name]
        base = results["base"]
        lp = results["lp"].exec_cycles / base.exec_cycles
        ep = results["ep"].exec_cycles / base.exec_cycles
        lp_ratios.append(lp)
        ep_ratios.append(ep)
        rows.append([name, round(lp, 3), round(ep, 3)])
    rows.append(
        ["gmean", round(geomean(lp_ratios), 3), round(geomean(ep_ratios), 3)]
    )
    return format_table(
        ["kernel", "LP exec", "EP exec"],
        rows,
        title="Per-kernel execution time (paper Figure 12: LP avg 1.011, EP avg 1.09)",
    )


def _recovery_section(scale: dict) -> str:
    """Crash + recovery exactness across injected failure points."""
    cfg = _config(scale["threads"])
    name, params = next(iter(scale["workloads"].items()))
    campaign = run_crash_campaign(
        get_workload(name)(**params),
        cfg,
        crash_points=scale["crash_points"],
        num_threads=scale["threads"],
    )
    rows = [
        [t.crash_at_op, t.crashed, t.recovery_ops, t.recovered_ok]
        for t in campaign.trials
    ]
    return format_table(
        ["crash at op", "crashed", "recovery ops", "exact"],
        rows,
        title=f"Crash recovery ({name}): output must be bit-exact",
    )


def _accuracy_section(scale: dict) -> str:
    """Section III-D flavour: error-injection accuracy."""
    rows = []
    for engine in available_engines():
        res = run_error_injection(
            get_engine(engine),
            region_size=64,
            trials=scale["accuracy_trials"],
            error_model="stale",
            seed=9,
        )
        rows.append([engine, res.trials, res.missed])
    return format_table(
        ["engine", "injected errors", "missed"],
        rows,
        title="Checksum accuracy (paper section III-D: P(miss) < 2e-9)",
    )


def reproduce(
    scale: str = "quick",
    n_jobs: int = 1,
    obs_interval: Optional[float] = None,
) -> str:
    """Run the compact reproduction and return the report text.

    ``n_jobs`` fans the independent experiment points inside each
    section out over that many processes (see
    :mod:`repro.analysis.runner`); the crash and accuracy sections are
    sequential campaigns and always run serially.  ``obs_interval``
    interval-samples the scheme/kernel experiment points (cached under
    distinct keys; the report text itself is unchanged).
    """
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)}"
        ) from None
    sections = [
        f"# Lazy Persistency reproduction report (scale: {scale})",
        _scheme_section(params, n_jobs=n_jobs, obs_interval=obs_interval),
        _kernels_section(params, n_jobs=n_jobs, obs_interval=obs_interval),
        _recovery_section(params),
        _accuracy_section(params),
        (
            "Full-scale harness: `pytest benchmarks/ --benchmark-only` "
            "(one bench per paper table/figure; see EXPERIMENTS.md)."
        ),
    ]
    return "\n\n".join(sections)
