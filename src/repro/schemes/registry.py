"""The persistency-scheme registry: one name per persist protocol.

This module is the single source of truth for the variant axis.  The
string constants the workload layer, the CLI and crashcheck routing
use (``SCHEME_BASE`` .. ``SCHEME_WB_NOJOURNAL``) live here, and each
name maps to a :class:`PersistencyScheme` object carrying

* metadata — a one-line summary, whether the scheme is *sound* (has a
  crash-recovery guarantee the checker should prove on every reachable
  image) or deliberately *broken* (a fault-injection target the
  checker must flag), and whether it is *composable* (implements the
  generic region protocol of :mod:`repro.schemes.compose`; the tmm
  kernel's ``ep_nofence`` is registered for metadata/routing only and
  stays implemented natively);
* the composed forward protocol — how one declared region's stores are
  made durable;
* the generic recovery — find the scheme's restart frontier on the
  post-crash image, then blindly redo the declared writes from there
  with Eager Persistency (recovery must be eager for forward progress,
  paper section III-E).

Recovery is idempotent by construction: frontiers are recomputed from
the image, redone regions rewrite their declared values, and markers /
checksums are refinalised to the same values — running recovery twice
on one image yields an identical NVMM image (pinned by
``tests/verify/test_recovery_idempotence.py``).
"""

from __future__ import annotations

from abc import ABC
from typing import Dict, List

from repro.errors import WorkloadError
from repro.sim.isa import Compute, Fence, Flush, RegionMark, Store
from repro.core.eager import (
    durable_store,
    persist_addrs,
    persist_region,
)
from repro.core.region import RegionChecksum
from repro.schemes.compose import RegionContext, RegionDecl

#: Scheme names (Table IV variants plus this repo's extensions).
SCHEME_BASE = "base"
SCHEME_LP = "lp"
SCHEME_EP = "ep"
SCHEME_WAL = "wal"
SCHEME_WRITE_BEHIND = "write_behind"
#: Deliberately broken schemes — fault-injection targets.
SCHEME_EP_NOFENCE = "ep_nofence"
SCHEME_WB_NOJOURNAL = "wb_nojournal"


class PersistencyScheme(ABC):
    """One named persist protocol, with composed forward + recovery."""

    #: Registry name (the CLI's ``--variant`` value).
    name: str = "abstract"
    #: One-line description for ``repro list``.
    summary: str = ""
    #: Carries a crash-consistency protocol with a bounded recovery
    #: procedure the checker should prove sound.  ``base`` is False:
    #: its only recovery is a full restart-from-scratch redo, so it is
    #: excluded from default crashcheck runs (matching the historical
    #: ``variant != "base"`` routing).
    sound: bool = False
    #: Deliberately unsound (the checker must *flag* it).
    broken: bool = False
    #: Implements the generic region protocol below.  False for
    #: schemes that exist only natively inside a kernel (ep_nofence).
    composable: bool = True

    # ------------------------------------------------------------------
    # composed forward execution
    # ------------------------------------------------------------------

    def forward_threads(self, host) -> List:
        self._require_composable(host)
        return [
            self.forward_thread(host, tid)
            for tid in range(host.num_threads)
        ]

    def forward_thread(self, host, tid: int):
        for decl in host.plans[tid]:
            yield from host.tag(decl.label)
            yield RegionMark(
                f"{host.spec.name}:{self.name}:t{tid}:r{decl.seq}"
            )
            ctx = self._context(host)
            yield from host.region_body(tid, decl, ctx)
            self._check_writes(host, tid, decl, ctx)
            yield from self._end_region(host, tid, decl, ctx)
            yield from host.tag()

    def _context(self, host) -> RegionContext:
        return RegionContext()

    def _end_region(self, host, tid: int, decl: RegionDecl, ctx):
        return
        yield  # pragma: no cover - empty generator idiom

    def _check_writes(
        self, host, tid: int, decl: RegionDecl, ctx: RegionContext
    ) -> None:
        if tuple(ctx.writes) != decl.writes:
            raise WorkloadError(
                f"workload {host.spec.name!r} thread {tid} region "
                f"{decl.seq} ({decl.label}): body performed writes "
                f"{tuple(ctx.writes)!r} but declared {decl.writes!r}"
            )

    # ------------------------------------------------------------------
    # generic recovery: frontier + blind redo (Eager, section III-E)
    # ------------------------------------------------------------------

    def recovery_threads(self, host) -> List:
        self._require_composable(host)
        return [
            self.recovery_thread(host, tid)
            for tid in range(host.num_threads)
        ]

    def recovery_thread(self, host, tid: int):
        yield RegionMark(f"{host.spec.name}:{self.name}:recover:t{tid}")
        redo_from = yield from self._frontier(host, tid)
        plan = host.plans[tid]
        for decl in plan[redo_from:]:
            yield RegionMark(
                f"{host.spec.name}:{self.name}:redo:t{tid}:r{decl.seq}"
            )
            yield from self._redo_region(host, tid, decl)
        yield from self._finalize_recovery(host, tid)

    def _frontier(self, host, tid: int):
        """First region seq that must be redone (yields recovery ops).

        The base scheme has no durable progress record, so everything
        is redone — recovery degenerates to a restart-from-scratch
        replay of the declared writes.
        """
        return 0
        yield  # pragma: no cover - empty generator idiom

    def _redo_region(self, host, tid: int, decl: RegionDecl):
        """Blindly rewrite the region's declared writes, durably."""
        for addr, value in decl.writes:
            yield Store(addr, value)
        yield from persist_region(decl.addrs)
        yield from self._redo_extra(host, tid, decl)

    def _redo_extra(self, host, tid: int, decl: RegionDecl):
        return
        yield  # pragma: no cover - empty generator idiom

    def _finalize_recovery(self, host, tid: int):
        return
        yield  # pragma: no cover - empty generator idiom

    # ------------------------------------------------------------------

    def _require_composable(self, host) -> None:
        if not self.composable:
            raise WorkloadError(
                f"scheme {self.name!r} has no composed implementation; "
                f"it exists only natively inside specific kernels"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<scheme {self.name}>"


class BaseScheme(PersistencyScheme):
    """Plain stores: durability by natural eviction, no guarantee."""

    name = SCHEME_BASE
    summary = "plain stores, no persist protocol (no crash guarantee)"
    sound = False


class LazyScheme(PersistencyScheme):
    """Lazy Persistency (Figure 8): per-region running checksum,
    committed lazily; recovery rescans checksums for the frontier."""

    name = SCHEME_LP
    summary = "checksum regions, lazy commit, no flushes or fences"
    sound = True

    class _Context(RegionContext):
        def __init__(self, ck: RegionChecksum, flops: float) -> None:
            super().__init__()
            self.ck = ck
            self.flops = flops

        def store(self, addr, value):
            ops = super().store(addr, value)
            self.ck.update_silent(float(value))
            return tuple(ops) + (Compute(self.flops),)

    def _context(self, host):
        lp = host.scheme_state.lp
        return self._Context(lp.begin_region(), lp.engine.flops_per_update)

    def _end_region(self, host, tid, decl, ctx):
        yield from host.scheme_state.lp.commit(ctx.ck, tid, decl.seq)

    def _frontier(self, host, tid):
        """Forward scan: first region whose slot is uncommitted or
        whose checksum, recomputed over the persisted values of its
        declared addresses, mismatches.  Redo-from-first-mismatch is
        exact even when later regions overwrite earlier addresses: the
        final value of every address is restored by its last declared
        writer, which is at or after the first mismatching region."""
        state = host.scheme_state
        engine = state.lp.engine
        for decl in host.plans[tid]:
            if not state.lp.region_committed(tid, decl.seq):
                return decl.seq
            ck = RegionChecksum(engine)
            for addr, _ in decl.writes:
                value = yield from self._timed_load(addr)
                ck.update_silent(value)
            yield Compute(len(decl.writes) * engine.flops_per_update)
            stored = yield from self._timed_load(
                state.lp.table.slot_addr(tid, decl.seq)
            )
            if float(ck.value) != stored:
                return decl.seq
        return len(host.plans[tid])

    @staticmethod
    def _timed_load(addr: int):
        from repro.sim.isa import Load

        value = yield Load(addr)
        return value

    def _redo_extra(self, host, tid, decl):
        """Recommit the redone region's checksum, eagerly."""
        state = host.scheme_state
        ck = RegionChecksum(state.lp.engine)
        for _, value in decl.writes:
            ck.update_silent(value)
        yield Compute(
            len(decl.writes) * state.lp.engine.flops_per_update
        )
        yield from state.lp.table.commit_eager(ck.value, tid, decl.seq)


class EagerScheme(PersistencyScheme):
    """Eager Persistency: flush+fence every region, then a durable
    per-thread progress marker."""

    name = SCHEME_EP
    summary = "clflushopt+sfence per region, durable progress marker"
    sound = True

    def _end_region(self, host, tid, decl, ctx):
        yield from persist_region(decl.addrs)
        marker = host.scheme_state.markers[tid]
        yield Store(marker.base, float(decl.seq))
        yield Flush(marker.base)
        yield Fence()

    def _frontier(self, host, tid):
        """Trust the marker: everything at or below it is durable."""
        return host.scheme_state.marker_value(tid) + 1
        yield  # pragma: no cover - untimed frontier

    def _finalize_recovery(self, host, tid):
        plan = host.plans[tid]
        if plan:
            marker = host.scheme_state.markers[tid]
            yield from durable_store(marker.base, float(len(plan) - 1))


class WalScheme(PersistencyScheme):
    """Write-ahead logging: every region is one durable undo-log
    transaction (Figure 2), publishing data and marker atomically."""

    name = SCHEME_WAL
    summary = "undo-log transaction per region (4 flush+fence sets)"
    sound = True

    def _context(self, host):
        return RegionContext(defer=True)

    def _end_region(self, host, tid, decl, ctx):
        marker = host.scheme_state.markers[tid]
        writes = tuple(decl.writes) + ((marker.base, float(decl.seq)),)
        yield from host.scheme_state.logs[tid].transaction(writes)

    def _frontier(self, host, tid):
        """Roll back any interrupted transaction, then trust the
        marker (restored by the rollback if it was in-flight)."""
        yield from host.scheme_state.logs[tid].recovery_ops()
        return host.scheme_state.marker_value(tid) + 1

    def _finalize_recovery(self, host, tid):
        plan = host.plans[tid]
        if plan:
            marker = host.scheme_state.markers[tid]
            yield from durable_store(marker.base, float(len(plan) - 1))


class WriteBehindScheme(PersistencyScheme):
    """Write-behind batching (the write-behind-cache pattern): stores
    coalesce in the volatile cache — the cache *is* the write-behind
    buffer — and every ``wb_batch`` regions the thread journals the
    coalesced dirty set, flushes it, and publishes a batch marker.

    Per-line cost drops when regions rewrite the same lines (one flush
    per distinct line per batch instead of per region), which is the
    coalescing win over Eager Persistency the write-amplification
    bench measures.
    """

    name = SCHEME_WRITE_BEHIND
    summary = "coalesce stores in cache, journal + flush per batch"
    sound = True
    #: Broken subclass drops the journal (and the data/marker fence).
    journal = True

    def forward_thread(self, host, tid: int):
        pending: Dict[int, float] = {}
        plan = host.plans[tid]
        batch = host.scheme_state.wb_batch
        for index, decl in enumerate(plan):
            yield from host.tag(decl.label)
            yield RegionMark(
                f"{host.spec.name}:{self.name}:t{tid}:r{decl.seq}"
            )
            ctx = self._context(host)
            yield from host.region_body(tid, decl, ctx)
            self._check_writes(host, tid, decl, ctx)
            for addr, value in ctx.writes:
                pending[addr] = value
            yield from host.tag()
            if pending and ((index + 1) % batch == 0 or index + 1 == len(plan)):
                yield from self._drain(host, tid, decl.seq, pending)
                pending = {}

    def _drain(self, host, tid: int, seq: int, pending: Dict[int, float]):
        """Persist one coalesced batch and publish its marker."""
        journal = host.scheme_state.journals[tid]
        marker = host.scheme_state.markers[tid]
        items = list(pending.items())
        if self.journal:
            # 1. journal the dirty queue (redo journal: new values).
            logged = [journal.count_addr, journal.seq_addr]
            for i, (addr, value) in enumerate(items):
                a_addr, v_addr = journal.entry_addrs(i)
                yield Store(a_addr, float(addr))
                yield Store(v_addr, value)
                logged.extend((a_addr, v_addr))
            yield Store(journal.count_addr, float(len(items)))
            yield Store(journal.seq_addr, float(seq))
            yield from persist_region(logged)
            # 2. validate the journal.
            yield Store(journal.status_addr, 1.0)
            yield Flush(journal.status_addr)
            yield Fence()
            # 3. flush the coalesced lines (data already stored by the
            #    region bodies; the cache held the write-behind buffer).
            yield from persist_region([addr for addr, _ in items])
            # 4. publish the batch and retire the journal.
            yield Store(marker.base, float(seq))
            yield Flush(marker.base)
            yield Store(journal.status_addr, 0.0)
            yield Flush(journal.status_addr)
            yield Fence()
        else:
            # BROKEN: no journal, and the batch marker's flush races
            # the data flushes under a single trailing fence — the
            # marker can persist while batch data is still volatile
            # (the ep_nofence bug at batch granularity).
            yield Store(marker.base, float(seq))
            yield from persist_addrs([addr for addr, _ in items])
            yield Flush(marker.base)
            yield Fence()

    def _frontier(self, host, tid):
        """Re-apply a validated in-flight batch from the journal, then
        trust the batch marker."""
        state = host.scheme_state
        journal = state.journals[tid]
        marker = state.markers[tid]
        if self.journal and journal.needs_redo():
            count = journal.persisted_count()
            restored: List[int] = []
            for i in range(count):
                a_addr, v_addr = journal.entry_addrs(i)
                target = yield from LazyScheme._timed_load(a_addr)
                value = yield from LazyScheme._timed_load(v_addr)
                yield Store(int(target), value)
                restored.append(int(target))
            yield from persist_region(restored)
            seq = yield from LazyScheme._timed_load(journal.seq_addr)
            yield Store(marker.base, seq)
            yield Flush(marker.base)
            yield Store(journal.status_addr, 0.0)
            yield Flush(journal.status_addr)
            yield Fence()
        return state.marker_value(tid) + 1

    def _finalize_recovery(self, host, tid):
        plan = host.plans[tid]
        if plan:
            marker = host.scheme_state.markers[tid]
            yield from durable_store(marker.base, float(len(plan) - 1))
        journal = host.scheme_state.journals[tid]
        yield from durable_store(journal.status_addr, 0.0)


class WriteBehindNoJournalScheme(WriteBehindScheme):
    """Deliberately broken write-behind: skips journaling its dirty
    queue, so a crash that persists a batch marker before the batch's
    data leaves recovery trusting a frontier the image never reached.
    The crash checker must flag this with a counterexample."""

    name = SCHEME_WB_NOJOURNAL
    summary = "BROKEN write-behind: batch published without a journal"
    sound = False
    broken = True
    journal = False


class EpNoFenceScheme(PersistencyScheme):
    """tmm's native fault-injection variant: Eager Persistency with
    the data fence dropped, so the progress marker's flush races the
    data flushes it is supposed to cover.  Registered for metadata and
    routing only — the implementation lives in
    :mod:`repro.workloads.tmm`."""

    name = SCHEME_EP_NOFENCE
    summary = "BROKEN eager: marker flush races unfenced data flushes"
    sound = False
    broken = True
    composable = False


_REGISTRY: Dict[str, PersistencyScheme] = {}


def _register(scheme: PersistencyScheme) -> PersistencyScheme:
    if scheme.name in _REGISTRY:  # pragma: no cover - module init
        raise WorkloadError(f"duplicate scheme name {scheme.name!r}")
    _REGISTRY[scheme.name] = scheme
    return scheme


_register(BaseScheme())
_register(LazyScheme())
_register(EagerScheme())
_register(WalScheme())
_register(WriteBehindScheme())
_register(WriteBehindNoJournalScheme())
_register(EpNoFenceScheme())


def get_scheme(name: str) -> PersistencyScheme:
    """The scheme registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown persistency scheme {name!r}; "
            f"available: {scheme_names()}"
        ) from None


def scheme_names() -> List[str]:
    """Every registered scheme name, sound and broken, sorted."""
    return sorted(_REGISTRY)


def sound_scheme_names() -> List[str]:
    """Schemes whose recovery the checker should prove, sorted."""
    return sorted(n for n, s in _REGISTRY.items() if s.sound)


def broken_scheme_names() -> List[str]:
    """Deliberate fault-injection schemes the checker must flag."""
    return sorted(n for n, s in _REGISTRY.items() if s.broken)


def composable_scheme_names() -> List[str]:
    """Schemes implementing the generic region protocol."""
    return sorted(n for n, s in _REGISTRY.items() if s.composable)
