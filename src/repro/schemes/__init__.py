"""Composable persistency schemes (the variant axis, reified).

``repro.schemes`` is the single source of truth for variant names and
their persist protocols.  Workloads that declare their durable regions
once (:class:`~repro.schemes.compose.RegionDecl` plans driven by
:class:`~repro.workloads.regional.RegionWorkload`) inherit every
registered scheme — base, LP, EP, WAL, write-behind — plus a generic,
scheme-owned crash recovery.  See docs/workloads.md.
"""

from repro.schemes.compose import (
    RegionContext,
    RegionDecl,
    SchemeState,
    WriteBehindJournal,
    validate_plans,
)
from repro.schemes.registry import (
    SCHEME_BASE,
    SCHEME_EP,
    SCHEME_EP_NOFENCE,
    SCHEME_LP,
    SCHEME_WAL,
    SCHEME_WB_NOJOURNAL,
    SCHEME_WRITE_BEHIND,
    PersistencyScheme,
    broken_scheme_names,
    composable_scheme_names,
    get_scheme,
    scheme_names,
    sound_scheme_names,
)

__all__ = [
    "SCHEME_BASE",
    "SCHEME_EP",
    "SCHEME_EP_NOFENCE",
    "SCHEME_LP",
    "SCHEME_WAL",
    "SCHEME_WB_NOJOURNAL",
    "SCHEME_WRITE_BEHIND",
    "PersistencyScheme",
    "RegionContext",
    "RegionDecl",
    "SchemeState",
    "WriteBehindJournal",
    "broken_scheme_names",
    "composable_scheme_names",
    "get_scheme",
    "scheme_names",
    "sound_scheme_names",
    "validate_plans",
]
