"""Composition protocol between workloads and persistency schemes.

A region-structured workload declares each durable region once, as a
:class:`RegionDecl` with a *static write-set*: the (address, value)
pairs the region will store, precomputed in Python from the workload's
seeded spec.  The scheme layer (:mod:`repro.schemes.registry`) then
drives the workload's region bodies through any persist protocol —
plain stores, LP checksums, eager flush+fence, WAL transactions, or
write-behind batching — and, crucially, owns a *generic recovery*: a
blind redo of the declared writes from the scheme's restart frontier.

Blind redo is the load-bearing design choice.  Re-executing a
value-dependent body (say, a hashmap probe loop) over a torn image is
unsound — a lost key store makes the probe stop early and place the
key in the wrong slot.  Redoing the precomputed (addr, value) pairs in
declaration order reconstructs the exact failure-free state from any
reachable image, because the final value of every address is the value
declared by its last writer.

:class:`SchemeState` allocates the scheme metadata — checksum table,
per-thread progress markers, WAL logs, write-behind journals — for
*every* workload uniformly, so create/rebind and all schemes address
identical regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.sim.address import Region
from repro.sim.isa import Load, Op, Store
from repro.sim.machine import Machine
from repro.core.lazy import LPRuntime
from repro.core.wal import WriteAheadLog


@dataclass(frozen=True)
class RegionDecl:
    """One durable region: a persist unit with a static write-set.

    ``seq`` is the region's position in its thread's plan (dense,
    starting at 0) — scheme markers and checksum-table slots are keyed
    by it.  ``writes`` lists every (element address, value) the region
    stores, in program order; the runner checks the body against it.
    """

    seq: int
    label: str
    writes: Tuple[Tuple[int, float], ...]

    @property
    def addrs(self) -> List[int]:
        """Distinct written element addresses, in first-write order."""
        seen: List[int] = []
        seen_set = set()
        for addr, _ in self.writes:
            if addr not in seen_set:
                seen_set.add(addr)
                seen.append(addr)
        return seen


class RegionContext:
    """Tracked data access inside one region body.

    Bodies route every durable store through :meth:`store` (``yield
    from ctx.store(addr, v)``) so the active scheme can interleave its
    protocol (checksum updates, deferral into a WAL transaction) and
    the runner can verify the body produced exactly its declared
    write-set.  Loads (:meth:`load`) are ordinary timed loads — bodies
    may read anything *except* their own in-region writes, which a
    deferring scheme (WAL) has not architecturally performed yet.
    """

    def __init__(self, defer: bool = False) -> None:
        self.defer = defer
        self.writes: List[Tuple[int, float]] = []

    def store(self, addr: int, value: float) -> Sequence[Op]:
        """Ops for one tracked store (empty when the scheme defers)."""
        self.writes.append((int(addr), float(value)))
        if self.defer:
            return ()
        return (Store(int(addr), float(value)),)

    def load(self, addr: int):
        """Timed element load; ``yield from`` returns the value."""
        value = yield Load(int(addr))
        return value


#: write-behind journal header slots (share one line, one flush each)
_WBJ_STATUS = 0
_WBJ_COUNT = 1
_WBJ_SEQ = 2
_WBJ_HEADER_ELEMS = 8  # pad to a full line


class WriteBehindJournal:
    """Per-thread redo journal for the write-behind scheme.

    Unlike :class:`~repro.core.wal.WriteAheadLog` (an undo log of old
    values), this journals the *new* coalesced values of one batch plus
    the batch's publish sequence number: a crash between journal
    validation and batch publication is repaired by re-applying the
    journaled writes, never by rollback — write-behind batches span
    many regions whose pre-images are long gone from any log.
    """

    def __init__(
        self, machine: Machine, name: str, capacity: int, create: bool = True
    ) -> None:
        if capacity <= 0:
            raise WorkloadError("journal capacity must be positive")
        self.machine = machine
        self.capacity = capacity
        if create:
            self.region: Region = machine.alloc(
                name, _WBJ_HEADER_ELEMS + 2 * capacity
            )
        else:
            self.region = machine.region(name)

    # -- addressing ---------------------------------------------------------

    @property
    def status_addr(self) -> int:
        return self.region.addr(_WBJ_STATUS)

    @property
    def count_addr(self) -> int:
        return self.region.addr(_WBJ_COUNT)

    @property
    def seq_addr(self) -> int:
        return self.region.addr(_WBJ_SEQ)

    def entry_addrs(self, i: int) -> Tuple[int, int]:
        """(address-slot, value-slot) element addresses of entry i."""
        base = _WBJ_HEADER_ELEMS + 2 * i
        return self.region.addr(base), self.region.addr(base + 1)

    # -- recovery-side inspection (untimed, reads the NVMM image) -----------

    def needs_redo(self) -> bool:
        """True if a crash interrupted a validated batch publication."""
        return self.machine.mem.persisted(self.status_addr, 0.0) == 1.0

    def persisted_count(self) -> int:
        return int(self.machine.mem.persisted(self.count_addr, 0.0))


def _max_plan_len(plans: Sequence[Sequence[RegionDecl]]) -> int:
    return max((len(plan) for plan in plans), default=0)


def _wal_capacity(plans: Sequence[Sequence[RegionDecl]]) -> int:
    """Largest region write-set, plus one slot for the progress marker
    (WAL transactions publish the marker atomically with the data)."""
    widest = max(
        (len(decl.writes) for plan in plans for decl in plan), default=0
    )
    return widest + 1


def _journal_capacity(
    plans: Sequence[Sequence[RegionDecl]], batch: int
) -> int:
    """Largest coalesced batch: distinct addresses in any window of
    ``batch`` consecutive regions of one thread's plan."""
    cap = 1
    for plan in plans:
        for start in range(0, len(plan), batch):
            window = plan[start : start + batch]
            distinct = {addr for d in window for addr, _ in d.writes}
            cap = max(cap, len(distinct))
    return cap


class SchemeState:
    """Scheme metadata for one bound region workload.

    Allocated uniformly — every scheme's regions exist under every
    scheme — so a workload bound with ``create=True`` and one rebound
    with ``create=False`` (post-crash recovery) agree on every address
    regardless of which scheme ran, and cross-scheme address layouts
    never diverge.
    """

    def __init__(
        self,
        machine: Machine,
        prefix: str,
        num_threads: int,
        plans: Sequence[Sequence[RegionDecl]],
        engine: str,
        wb_batch: int,
        create: bool = True,
    ) -> None:
        if wb_batch < 1:
            raise WorkloadError(f"wb_batch must be >= 1, got {wb_batch}")
        self.machine = machine
        self.num_threads = num_threads
        self.wb_batch = wb_batch
        self.lp = LPRuntime(
            machine,
            f"{prefix}.cktab",
            dims=(num_threads, max(1, _max_plan_len(plans))),
            engine=engine,
            create=create,
        )
        self.markers: List[Region] = [
            machine.scalar(f"{prefix}.progress.{t}", -1.0)
            if create
            else machine.region(f"{prefix}.progress.{t}")
            for t in range(num_threads)
        ]
        self.logs: List[WriteAheadLog] = [
            WriteAheadLog(
                machine,
                f"{prefix}.wal.{t}",
                capacity=max(2, _wal_capacity(plans)),
                create=create,
            )
            for t in range(num_threads)
        ]
        self.journals: List[WriteBehindJournal] = [
            WriteBehindJournal(
                machine,
                f"{prefix}.wbj.{t}",
                capacity=_journal_capacity(plans, wb_batch),
                create=create,
            )
            for t in range(num_threads)
        ]

    def marker_value(self, tid: int) -> int:
        """The thread's persisted progress marker (recovery view)."""
        return int(
            self.machine.mem.persisted(self.markers[tid].base, -1.0)
        )


def validate_plans(
    name: str, plans: Sequence[Sequence[RegionDecl]]
) -> None:
    """Structural invariants the scheme layer's soundness rests on.

    * region ``seq`` equals its plan position (dense keying for
      markers and checksum slots);
    * every region declares at least one write;
    * thread write-sets are disjoint (per-thread recovery frontiers
      are only sound when no other thread can touch my addresses).
    """
    owned: Dict[int, int] = {}
    for tid, plan in enumerate(plans):
        for index, decl in enumerate(plan):
            if decl.seq != index:
                raise WorkloadError(
                    f"workload {name!r} thread {tid}: region at position "
                    f"{index} declares seq {decl.seq}"
                )
            if not decl.writes:
                raise WorkloadError(
                    f"workload {name!r} thread {tid} region {index}: "
                    "empty write-set"
                )
            for addr, _ in decl.writes:
                owner = owned.setdefault(addr, tid)
                if owner != tid:
                    raise WorkloadError(
                        f"workload {name!r}: address {addr} written by "
                        f"threads {owner} and {tid}; thread write-sets "
                        "must be disjoint"
                    )
